//! Top-k answers.
//!
//! Section 4 defines "the top k answers": k objects with the highest grades,
//! together with those grades; when there are ties, *any* k objects such that
//! every omitted object's grade is no larger than every included one. The
//! tie-tolerant comparison helpers here implement exactly that acceptance
//! criterion, which the test-suite uses to compare every algorithm against
//! the naive baseline.

use garlic_agg::Grade;

use crate::graded_set::{GradedEntry, GradedSet};
use crate::object::ObjectId;

/// A top-k answer: at most `k` `(object, grade)` pairs in descending grade
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    entries: Vec<GradedEntry>,
}

impl TopK {
    /// Wraps entries that are already the chosen answer, sorting them by
    /// descending grade (ties by object id, for deterministic output).
    pub fn from_entries(mut entries: Vec<GradedEntry>) -> Self {
        entries.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
        TopK { entries }
    }

    /// Selects the `k` best from candidate `(object, grade)` pairs
    /// (ties broken arbitrarily — here, by ascending object id).
    pub fn select(candidates: impl IntoIterator<Item = (ObjectId, Grade)>, k: usize) -> Self {
        let mut entries: Vec<GradedEntry> = candidates
            .into_iter()
            .map(|(object, grade)| GradedEntry { object, grade })
            .collect();
        entries.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
        entries.truncate(k);
        TopK { entries }
    }

    /// Number of answers (== k unless the database was smaller than k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no answers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The answers, best first.
    pub fn entries(&self) -> &[GradedEntry] {
        &self.entries
    }

    /// The single best answer, if any.
    pub fn best(&self) -> Option<GradedEntry> {
        self.entries.first().copied()
    }

    /// The objects, best first.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.entries.iter().map(|e| e.object).collect()
    }

    /// The grades, best first.
    pub fn grades(&self) -> Vec<Grade> {
        self.entries.iter().map(|e| e.grade).collect()
    }

    /// Converts into a [`GradedSet`] (the paper's output type).
    pub fn into_graded_set(self) -> GradedSet {
        GradedSet::from_pairs(self.entries.into_iter().map(|e| (e.object, e.grade)))
    }

    /// Tie-tolerant equivalence: two answers are interchangeable iff their
    /// grade sequences agree (Section 4's definition makes the grade
    /// multiset of any valid top-k answer unique even when the object sets
    /// differ).
    pub fn same_grades(&self, other: &TopK, eps: f64) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.grade.approx_eq(b.grade, eps))
    }
}

impl std::fmt::Display for TopK {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(f, "{:>3}. {}  grade {}", i + 1, e.object, e.grade)?;
        }
        Ok(())
    }
}

/// Errors reported by the query-evaluation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopKError {
    /// `k` was zero.
    ZeroK,
    /// `k` exceeded the database size (the paper assumes `k <= N`).
    KTooLarge {
        /// Requested k.
        k: usize,
        /// Database size.
        n: usize,
    },
    /// No sources were supplied.
    NoSources,
    /// The sources disagree on the database size.
    MismatchedSources {
        /// The sizes observed.
        sizes: Vec<usize>,
    },
    /// The algorithm requires a specific arity (e.g. Ullman's needs m = 2).
    WrongArity {
        /// What the algorithm needs.
        expected: usize,
        /// What it was given.
        actual: usize,
    },
    /// The aggregation function lacks a property the algorithm relies on
    /// (e.g. the filtered strategy needs a zero annihilator).
    UnsupportedAggregation {
        /// Why the aggregation was rejected.
        reason: &'static str,
    },
}

impl std::fmt::Display for TopKError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopKError::ZeroK => write!(f, "k must be at least 1"),
            TopKError::KTooLarge { k, n } => {
                write!(f, "k = {k} exceeds the database size N = {n}")
            }
            TopKError::NoSources => write!(f, "at least one source is required"),
            TopKError::MismatchedSources { sizes } => {
                write!(f, "sources grade different object sets: sizes {sizes:?}")
            }
            TopKError::WrongArity { expected, actual } => {
                write!(f, "algorithm requires m = {expected} sources, got {actual}")
            }
            TopKError::UnsupportedAggregation { reason } => {
                write!(f, "unsupported aggregation function: {reason}")
            }
        }
    }
}

impl std::error::Error for TopKError {}

/// Validates the common preconditions shared by all algorithms and returns
/// the database size `N`.
pub(crate) fn validate_inputs<S: crate::access::GradedSource>(
    sources: &[S],
    k: usize,
) -> Result<usize, TopKError> {
    if sources.is_empty() {
        return Err(TopKError::NoSources);
    }
    let n = sources[0].len();
    if sources.iter().any(|s| s.len() != n) {
        return Err(TopKError::MismatchedSources {
            sizes: sources.iter().map(|s| s.len()).collect(),
        });
    }
    if k == 0 {
        return Err(TopKError::ZeroK);
    }
    if k > n {
        return Err(TopKError::KTooLarge { k, n });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemorySource;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn select_takes_best() {
        let t = TopK::select(
            [
                (ObjectId(0), g(0.1)),
                (ObjectId(1), g(0.9)),
                (ObjectId(2), g(0.5)),
            ],
            2,
        );
        assert_eq!(t.objects(), vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(t.best().unwrap().grade, g(0.9));
    }

    #[test]
    fn same_grades_tolerates_object_swaps() {
        let a = TopK::select([(ObjectId(0), g(0.5)), (ObjectId(1), g(0.5))], 1);
        let b = TopK::select([(ObjectId(1), g(0.5)), (ObjectId(2), g(0.5))], 1);
        assert!(a.same_grades(&b, 0.0));
    }

    #[test]
    fn same_grades_detects_mismatch() {
        let a = TopK::select([(ObjectId(0), g(0.5))], 1);
        let b = TopK::select([(ObjectId(0), g(0.6))], 1);
        assert!(!a.same_grades(&b, 1e-9));
        assert!(a.same_grades(&b, 0.2));
    }

    #[test]
    fn validation_errors() {
        let s = vec![MemorySource::from_grades(&[g(0.1), g(0.2)])];
        assert_eq!(validate_inputs(&s, 0), Err(TopKError::ZeroK));
        assert_eq!(
            validate_inputs(&s, 3),
            Err(TopKError::KTooLarge { k: 3, n: 2 })
        );
        assert_eq!(validate_inputs(&s, 2), Ok(2));
        let empty: Vec<MemorySource> = vec![];
        assert_eq!(validate_inputs(&empty, 1), Err(TopKError::NoSources));

        let mismatched = vec![
            MemorySource::from_grades(&[g(0.1), g(0.2)]),
            MemorySource::from_grades(&[g(0.1)]),
        ];
        assert!(matches!(
            validate_inputs(&mismatched, 1),
            Err(TopKError::MismatchedSources { .. })
        ));
    }

    #[test]
    fn into_graded_set_round_trips() {
        let t = TopK::select([(ObjectId(0), g(0.1)), (ObjectId(1), g(0.9))], 2);
        let set = t.into_graded_set();
        assert_eq!(set.at_rank(0).unwrap().object, ObjectId(1));
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = format!("{}", TopKError::KTooLarge { k: 5, n: 3 });
        assert!(msg.contains("k = 5"));
        assert!(msg.contains("N = 3"));
    }
}
