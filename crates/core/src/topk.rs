//! Top-k answers.
//!
//! Section 4 defines "the top k answers": k objects with the highest grades,
//! together with those grades; when there are ties, *any* k objects such that
//! every omitted object's grade is no larger than every included one. The
//! tie-tolerant comparison helpers here implement exactly that acceptance
//! criterion, which the test-suite uses to compare every algorithm against
//! the naive baseline.

use garlic_agg::Grade;

use crate::graded_set::{GradedEntry, GradedSet};
use crate::object::ObjectId;

/// A top-k answer: at most `k` `(object, grade)` pairs in descending grade
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    entries: Vec<GradedEntry>,
}

impl TopK {
    /// Wraps entries that are already the chosen answer, sorting them by
    /// descending grade (ties by object id, for deterministic output).
    pub fn from_entries(mut entries: Vec<GradedEntry>) -> Self {
        entries.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
        TopK { entries }
    }

    /// Selects the `k` best from candidate `(object, grade)` pairs
    /// (ties broken arbitrarily — here, by ascending object id).
    ///
    /// Runs in `O(n log k)` with a bounded heap of `k` entries instead of
    /// sorting all `n` candidates: the heap is ordered by the same total
    /// `(grade desc, object asc)` key the full sort used, so the selected
    /// entries — including tie order — are bit-identical to sorting and
    /// truncating.
    pub fn select(candidates: impl IntoIterator<Item = (ObjectId, Grade)>, k: usize) -> Self {
        use std::collections::BinaryHeap;

        /// Orders entries *worst first*: the heap's max is the weakest of
        /// the `k` kept, the one a better candidate evicts.
        #[derive(PartialEq, Eq)]
        struct Worst(GradedEntry);
        impl Ord for Worst {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .0
                    .grade
                    .cmp(&self.0.grade)
                    .then(self.0.object.cmp(&other.0.object))
            }
        }
        impl PartialOrd for Worst {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        if k == 0 {
            // Drain the iterator's side effects are irrelevant; empty answer.
            return TopK {
                entries: Vec::new(),
            };
        }
        let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
        for (object, grade) in candidates {
            let entry = Worst(GradedEntry { object, grade });
            if heap.len() < k {
                heap.push(entry);
            } else if entry < *heap.peek().expect("heap holds k > 0 entries") {
                heap.pop();
                heap.push(entry);
            }
        }
        // `into_sorted_vec` is ascending in `Worst` order — i.e. best first.
        let entries: Vec<GradedEntry> = heap.into_sorted_vec().into_iter().map(|w| w.0).collect();
        TopK { entries }
    }

    /// Wraps entries that are **already** in descending-grade order (ties
    /// by ascending object id) without re-sorting — the zero-cost path for
    /// slices of a previously ranked answer. Debug builds assert the order.
    pub fn from_sorted_entries(entries: Vec<GradedEntry>) -> Self {
        debug_assert!(
            entries
                .windows(2)
                .all(|w| (w[1].grade, std::cmp::Reverse(w[1].object))
                    <= (w[0].grade, std::cmp::Reverse(w[0].object))),
            "entries must already be in (grade desc, object asc) order"
        );
        TopK { entries }
    }

    /// Number of answers (== k unless the database was smaller than k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no answers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The answers, best first.
    pub fn entries(&self) -> &[GradedEntry] {
        &self.entries
    }

    /// Consumes the answer, returning its entries (best first) without
    /// copying.
    pub fn into_entries(self) -> Vec<GradedEntry> {
        self.entries
    }

    /// The single best answer, if any.
    pub fn best(&self) -> Option<GradedEntry> {
        self.entries.first().copied()
    }

    /// The objects, best first.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.entries.iter().map(|e| e.object).collect()
    }

    /// The grades, best first.
    pub fn grades(&self) -> Vec<Grade> {
        self.entries.iter().map(|e| e.grade).collect()
    }

    /// Converts into a [`GradedSet`] (the paper's output type).
    pub fn into_graded_set(self) -> GradedSet {
        GradedSet::from_pairs(self.entries.into_iter().map(|e| (e.object, e.grade)))
    }

    /// Tie-tolerant equivalence: two answers are interchangeable iff their
    /// grade sequences agree (Section 4's definition makes the grade
    /// multiset of any valid top-k answer unique even when the object sets
    /// differ).
    pub fn same_grades(&self, other: &TopK, eps: f64) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.grade.approx_eq(b.grade, eps))
    }
}

impl std::fmt::Display for TopK {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(f, "{:>3}. {}  grade {}", i + 1, e.object, e.grade)?;
        }
        Ok(())
    }
}

/// Errors reported by the query-evaluation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopKError {
    /// `k` was zero.
    ZeroK,
    /// `k` exceeded the database size (the paper assumes `k <= N`).
    KTooLarge {
        /// Requested k.
        k: usize,
        /// Database size.
        n: usize,
    },
    /// No sources were supplied.
    NoSources,
    /// The sources disagree on the database size.
    MismatchedSources {
        /// The sizes observed.
        sizes: Vec<usize>,
    },
    /// The algorithm requires a specific arity (e.g. Ullman's needs m = 2).
    WrongArity {
        /// What the algorithm needs.
        expected: usize,
        /// What it was given.
        actual: usize,
    },
    /// The aggregation function lacks a property the algorithm relies on
    /// (e.g. the filtered strategy needs a zero annihilator).
    UnsupportedAggregation {
        /// Why the aggregation was rejected.
        reason: &'static str,
    },
    /// A source's fallible read path reported a runtime I/O failure (after
    /// its retry policy was exhausted). The engine's partial progress is
    /// preserved: if the failure was transient, the same call can be
    /// retried and resumes where it stopped.
    SourceFailed(crate::access::SourceError),
    /// The engine's cooperative deadline expired between batch rounds. The
    /// engine state is consistent: clearing or extending the deadline and
    /// retrying the call resumes the identical stream.
    DeadlineExceeded,
}

impl std::fmt::Display for TopKError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopKError::ZeroK => write!(f, "k must be at least 1"),
            TopKError::KTooLarge { k, n } => {
                write!(f, "k = {k} exceeds the database size N = {n}")
            }
            TopKError::NoSources => write!(f, "at least one source is required"),
            TopKError::MismatchedSources { sizes } => {
                write!(f, "sources grade different object sets: sizes {sizes:?}")
            }
            TopKError::WrongArity { expected, actual } => {
                write!(f, "algorithm requires m = {expected} sources, got {actual}")
            }
            TopKError::UnsupportedAggregation { reason } => {
                write!(f, "unsupported aggregation function: {reason}")
            }
            TopKError::SourceFailed(e) => write!(f, "{e}"),
            TopKError::DeadlineExceeded => {
                write!(f, "query deadline exceeded between engine batch rounds")
            }
        }
    }
}

impl std::error::Error for TopKError {}

/// Validates the common preconditions shared by all algorithms and returns
/// the database size `N`.
pub(crate) fn validate_inputs<S: crate::access::GradedSource>(
    sources: &[S],
    k: usize,
) -> Result<usize, TopKError> {
    if sources.is_empty() {
        return Err(TopKError::NoSources);
    }
    let n = sources[0].len();
    if sources.iter().any(|s| s.len() != n) {
        return Err(TopKError::MismatchedSources {
            sizes: sources.iter().map(|s| s.len()).collect(),
        });
    }
    if k == 0 {
        return Err(TopKError::ZeroK);
    }
    if k > n {
        return Err(TopKError::KTooLarge { k, n });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemorySource;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn select_takes_best() {
        let t = TopK::select(
            [
                (ObjectId(0), g(0.1)),
                (ObjectId(1), g(0.9)),
                (ObjectId(2), g(0.5)),
            ],
            2,
        );
        assert_eq!(t.objects(), vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(t.best().unwrap().grade, g(0.9));
    }

    #[test]
    fn bounded_heap_select_matches_full_sort_including_tie_order() {
        // Many deliberate grade collisions so the k-cut lands inside ties;
        // the heap selection must reproduce the sort-and-truncate answer
        // entry for entry.
        let candidates: Vec<(ObjectId, Grade)> = (0..97u64)
            .map(|i| {
                (
                    ObjectId((i * 31) % 97),
                    Grade::clamped((i % 5) as f64 / 4.0),
                )
            })
            .collect();
        for k in [0, 1, 2, 5, 48, 96, 97, 200] {
            let heap = TopK::select(candidates.iter().copied(), k);
            let mut sorted: Vec<GradedEntry> = candidates
                .iter()
                .map(|&(object, grade)| GradedEntry { object, grade })
                .collect();
            sorted.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
            sorted.truncate(k);
            assert_eq!(heap.entries(), &sorted[..], "k = {k}");
        }
    }

    #[test]
    fn from_sorted_entries_preserves_ranked_slices() {
        let all = TopK::select(
            [
                (ObjectId(0), g(0.1)),
                (ObjectId(1), g(0.9)),
                (ObjectId(2), g(0.5)),
            ],
            3,
        );
        let slice = TopK::from_sorted_entries(all.entries()[1..].to_vec());
        assert_eq!(slice.objects(), vec![ObjectId(2), ObjectId(0)]);
        assert_eq!(all.clone().into_entries(), all.entries().to_vec());
    }

    #[test]
    fn same_grades_tolerates_object_swaps() {
        let a = TopK::select([(ObjectId(0), g(0.5)), (ObjectId(1), g(0.5))], 1);
        let b = TopK::select([(ObjectId(1), g(0.5)), (ObjectId(2), g(0.5))], 1);
        assert!(a.same_grades(&b, 0.0));
    }

    #[test]
    fn same_grades_detects_mismatch() {
        let a = TopK::select([(ObjectId(0), g(0.5))], 1);
        let b = TopK::select([(ObjectId(0), g(0.6))], 1);
        assert!(!a.same_grades(&b, 1e-9));
        assert!(a.same_grades(&b, 0.2));
    }

    #[test]
    fn validation_errors() {
        let s = vec![MemorySource::from_grades(&[g(0.1), g(0.2)])];
        assert_eq!(validate_inputs(&s, 0), Err(TopKError::ZeroK));
        assert_eq!(
            validate_inputs(&s, 3),
            Err(TopKError::KTooLarge { k: 3, n: 2 })
        );
        assert_eq!(validate_inputs(&s, 2), Ok(2));
        let empty: Vec<MemorySource> = vec![];
        assert_eq!(validate_inputs(&empty, 1), Err(TopKError::NoSources));

        let mismatched = vec![
            MemorySource::from_grades(&[g(0.1), g(0.2)]),
            MemorySource::from_grades(&[g(0.1)]),
        ];
        assert!(matches!(
            validate_inputs(&mismatched, 1),
            Err(TopKError::MismatchedSources { .. })
        ));
    }

    #[test]
    fn into_graded_set_round_trips() {
        let t = TopK::select([(ObjectId(0), g(0.1)), (ObjectId(1), g(0.9))], 2);
        let set = t.into_graded_set();
        assert_eq!(set.at_rank(0).unwrap().object, ObjectId(1));
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = format!("{}", TopKError::KTooLarge { k: 5, n: 3 });
        assert!(msg.contains("k = 5"));
        assert!(msg.contains("N = 3"));
    }
}
