//! The headline micro-benchmark of the cursor refactor: batched cursor
//! streaming vs per-item positional access, through the same
//! `CountingSource<Box<dyn GradedSource>>` stack the middleware executes
//! over (N = 100k, m = 3).
//!
//! Two layers are measured:
//!
//! * `sorted_stream` — raw sorted-phase throughput: walk every list fully,
//!   once via `sorted_access(rank)` per entry (the seed access path: one
//!   virtual call + `Option` + counter update per entry) and once via
//!   `SortedCursor::next_batch` with a reused 1024-entry buffer (one
//!   virtual call + one counter update per batch, slice copies inside).
//! * `fa_sorted_phase` — the same comparison embedded in algorithm A₀'s
//!   "wait for k matches" phase, with identical `HashMap` bookkeeping on
//!   both sides, so the difference isolates the access layer.
//!
//! Results also land in `target/bench_engine.json` (shim JSON output) so
//! the `BENCH_*.json` trajectory can be populated from CI.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use garlic_agg::Grade;
use garlic_core::access::CountingSource;
use garlic_core::{Engine, GradedSource, ObjectId};
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

const N: usize = 100_000;
const M: usize = 3;
const K: usize = 10;
const BATCH: usize = 1024;

type Boxed = CountingSource<Box<dyn GradedSource>>;

/// The middleware-shaped source stack: independent lists behind trait
/// objects behind metering counters.
fn boxed_sources() -> Vec<Boxed> {
    let mut rng = garlic_workload::seeded_rng(8217);
    let skeleton = Skeleton::random(M, N, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    db.to_sources()
        .into_iter()
        .map(|s| CountingSource::new(Box::new(s) as Box<dyn GradedSource>))
        .collect()
}

/// The seed positional A₀ sorted phase, bookkeeping included exactly as the
/// pre-engine `SortedPhase` kept it (per-list grades, per-list ranks, a
/// seen-counter), so the two sides differ only in the access path.
struct SeedPartial {
    grades: Vec<Option<Grade>>,
    ranks: Vec<Option<usize>>,
    seen_sorted: usize,
}

fn positional_sorted_phase(sources: &[Boxed], k: usize) -> usize {
    let m = sources.len();
    let n = sources[0].len();
    let mut partial: HashMap<ObjectId, SeedPartial> = HashMap::new();
    let mut matched = 0usize;
    let mut depth = 0usize;
    while matched < k && depth < n {
        for (i, source) in sources.iter().enumerate() {
            let entry = source.sorted_access(depth).unwrap();
            let p = partial.entry(entry.object).or_insert_with(|| SeedPartial {
                grades: vec![None; m],
                ranks: vec![None; m],
                seen_sorted: 0,
            });
            p.grades[i] = Some(entry.grade);
            p.ranks[i] = Some(depth);
            p.seen_sorted += 1;
            if p.seen_sorted == m {
                matched += 1;
            }
        }
        depth += 1;
    }
    depth
}

fn bench_sorted_stream(c: &mut Criterion) {
    let sources = boxed_sources();
    let mut group = c.benchmark_group(format!("sorted_stream/N{N}_m{M}"));

    group.bench_function("positional_per_rank", |b| {
        b.iter(|| {
            let mut count = 0u64;
            for source in &sources {
                for rank in 0..N {
                    let entry = source.sorted_access(rank).unwrap();
                    count += u64::from(entry.grade > Grade::ZERO);
                }
            }
            black_box(count)
        })
    });

    group.bench_function(format!("cursor_batched_{BATCH}"), |b| {
        let mut buf = Vec::with_capacity(BATCH);
        b.iter(|| {
            let mut count = 0u64;
            for source in &sources {
                let mut cursor = source.open_sorted();
                loop {
                    buf.clear();
                    if cursor.next_batch(&mut buf, BATCH) == 0 {
                        break;
                    }
                    for entry in &buf {
                        count += u64::from(entry.grade > Grade::ZERO);
                    }
                }
            }
            black_box(count)
        })
    });

    group.finish();
}

fn bench_fa_sorted_phase(c: &mut Criterion) {
    let sources = boxed_sources();
    let mut group = c.benchmark_group(format!("fa_sorted_phase/N{N}_m{M}_k{K}"));

    group.bench_function("positional_per_rank", |b| {
        b.iter(|| black_box(positional_sorted_phase(&sources, K)))
    });

    group.bench_function("engine_batched", |b| {
        b.iter(|| {
            let mut engine = Engine::open(sources.iter().collect::<Vec<_>>()).unwrap();
            engine.advance_until_matched(K).unwrap();
            black_box(engine.depth())
        })
    });

    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).json_path(
        // Bench executables run with the *package* root as cwd; anchor the
        // report in the workspace target dir regardless.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench_engine.json")
    );
    targets = bench_sorted_stream, bench_fa_sorted_phase
);
criterion_main!(benches);
