//! The sharded scatter-gather benchmark: disk-backed [`ShardedSource`]
//! against (a) one flat segment and (b) a naive scatter-gather that reads
//! the full prefix from *every* shard before merging — the strategy the
//! shared grade frontier exists to beat.
//!
//! Three contenders stream the same deep top-of-ranking prefix (N/8
//! entries of an N-object attribute, N = 10M by default, `GARLIC_SHARD_N`
//! overrides for CI smoke runs):
//!
//! * `shard_scan/deep_prefix/unsharded` — one segment, batched cursor;
//! * `shard_scan/deep_prefix/naive_scatter` — T entries from each of the
//!   S shards, sorted and truncated to T (S×T decode + a global sort);
//! * `shard_scan/deep_prefix/sharded` — the k-way merge with the shared
//!   frontier, which pulls ≈ T/S per shard and stops.
//!
//! `shard_topk/fa_min_k10/{unsharded,sharded}` runs A₀′ end-to-end over
//! two attributes on both layouts — sorted and random access through the
//! shard router under a real algorithm.
//!
//! Group and variant names deliberately omit N and S so the same names
//! survive a CI-shrunk run (`perf_gate --pair` addresses them by name).
//! Every contender is equality-gated against the flat segment before any
//! timing starts. All shards read through one warm [`BlockCache`], so the
//! measured difference is decode + merge work, not I/O.
//!
//! After the criterion group flushes `target/bench_shard.json`, `main`
//! patches a `shard_metrics` object into the report: the measured
//! sharded-vs-naive speedup and the frontier's early-termination savings
//! (`1 − consumed/(S × emitted)` from [`ShardScanStats`]).

use std::sync::{Arc, OnceLock};

use criterion::{black_box, criterion_group, Criterion};
use garlic_bench::report;
use garlic_core::access::GradedSource;
use garlic_core::algorithms::fa_min::fagin_min_topk;
use garlic_core::{GradedEntry, ShardedSource};
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

const SHARDS: usize = 4;
const BATCH: usize = 1024;
const K: usize = 10;

fn n_objects() -> usize {
    std::env::var("GARLIC_SHARD_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000)
}

/// The early-termination savings observed on the scan attribute, stashed
/// by the bench body for `main` to patch into the JSON report.
static SAVINGS: OnceLock<(f64, u64, u64)> = OnceLock::new();

/// Streams the top-`t` prefix through the batched cursor path.
fn scan_prefix<S: GradedSource>(source: &S, t: usize, buf: &mut Vec<GradedEntry>) -> usize {
    buf.clear();
    let mut rank = 0;
    while rank < t {
        let got = source.sorted_batch(rank, (t - rank).min(BATCH), buf);
        if got == 0 {
            break;
        }
        rank += got;
    }
    rank
}

/// The strategy the frontier replaces: fetch `t` entries from *every*
/// shard (no shard can be trusted to hold fewer than `t` of the global
/// top-`t`), then sort the union and truncate.
fn naive_scatter(shards: &[SegmentSource], t: usize, buf: &mut Vec<GradedEntry>) {
    buf.clear();
    for shard in shards {
        let mut rank = 0;
        while rank < t {
            let got = shard.sorted_batch(rank, (t - rank).min(BATCH), buf);
            if got == 0 {
                break;
            }
            rank += got;
        }
    }
    buf.sort_unstable_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
    buf.truncate(t);
}

struct Attribute {
    flat: SegmentSource,
    shards: Vec<SegmentSource>,
    sharded: ShardedSource<SegmentSource>,
}

fn build_attribute(
    dir: &std::path::Path,
    stem: &str,
    source: &garlic_core::access::MemorySource,
    cache: &Arc<BlockCache>,
) -> Attribute {
    let flat_path = dir.join(format!("{stem}.seg"));
    SegmentWriter::new()
        .write_graded_set(&flat_path, source.graded_set())
        .unwrap();
    let pairs: Vec<_> = source
        .graded_set()
        .as_slice()
        .iter()
        .map(|e| (e.object, e.grade))
        .collect();
    let parts = SegmentWriter::new()
        .write_sharded_pairs(dir, stem, SHARDS, pairs)
        .unwrap();

    let flat = SegmentSource::open(&flat_path, Arc::clone(cache)).unwrap();
    let open = |info: &garlic_storage::ShardInfo| {
        SegmentSource::open(&info.path, Arc::clone(cache)).unwrap()
    };
    let shards: Vec<_> = parts.iter().map(open).collect();
    let merge_shards: Vec<_> = parts.iter().map(open).collect();
    let fences: Vec<u64> = parts.iter().map(|p| p.first_id).collect();
    let sharded = ShardedSource::new(merge_shards, fences);
    Attribute {
        flat,
        shards,
        sharded,
    }
}

fn bench_shard(c: &mut Criterion) {
    let n = n_objects();
    let t = (n / 8).max(1);
    eprintln!("bench_shard: N = {n}, prefix T = {t}, S = {SHARDS}");

    let mut rng = garlic_workload::seeded_rng(2260);
    let skeleton = Skeleton::random(2, n, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    let mut sources = db.to_sources();
    let attr_b = sources.pop().expect("two lists");
    let attr_a = sources.pop().expect("two lists");

    let dir = std::env::temp_dir().join(format!("garlic-bench-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // One warm cache for every contender: budget covers the deep prefix of
    // the flat segments plus all shard prefixes the naive scatter touches.
    let cache = Arc::new(BlockCache::new(262_144));
    let a = build_attribute(&dir, "shard-a", &attr_a, &cache);
    let b = build_attribute(&dir, "shard-b", &attr_b, &cache);
    drop((attr_a, attr_b, db, skeleton));

    // Equality gates before timing: every contender must produce the flat
    // segment's exact prefix, and both layouts the same top-k answer.
    let mut flat_run = Vec::with_capacity(t);
    let mut other = Vec::with_capacity(t * SHARDS);
    assert_eq!(scan_prefix(&a.flat, t, &mut flat_run), t);
    a.sharded.reset_scan();
    assert_eq!(scan_prefix(&a.sharded, t, &mut other), t);
    assert_eq!(flat_run, other, "sharded merge is bit-identical to flat");
    naive_scatter(&a.shards, t, &mut other);
    assert_eq!(flat_run, other, "naive scatter-gather agrees after sorting");
    let flat_topk = fagin_min_topk(&[&a.flat, &b.flat], K).unwrap();
    a.sharded.reset_scan();
    b.sharded.reset_scan();
    let sharded_topk = fagin_min_topk(&[&a.sharded, &b.sharded], K).unwrap();
    assert_eq!(
        flat_topk.entries(),
        sharded_topk.entries(),
        "both layouts return the identical top-k"
    );

    let mut group = c.benchmark_group("shard_scan/deep_prefix");
    group.bench_function("unsharded", |bench| {
        bench.iter(|| black_box(scan_prefix(&a.flat, t, &mut flat_run)))
    });
    group.bench_function("naive_scatter", |bench| {
        bench.iter(|| {
            naive_scatter(&a.shards, t, &mut other);
            black_box(other.len())
        })
    });
    group.bench_function("sharded", |bench| {
        bench.iter(|| {
            // The merged prefix is cached per scan; reset so every
            // iteration pays the full merge, not a memcpy of the cache.
            a.sharded.reset_scan();
            black_box(scan_prefix(&a.sharded, t, &mut other))
        })
    });
    group.finish();

    // Capture the frontier's savings from one representative deep scan.
    a.sharded.reset_scan();
    scan_prefix(&a.sharded, t, &mut other);
    let stats = a.sharded.scan_stats();
    eprintln!(
        "sharded scan: emitted {} consumed {} over {} shards → {:.1}% early-termination savings",
        stats.emitted,
        stats.consumed,
        stats.shards,
        100.0 * stats.early_termination_savings()
    );
    let _ = SAVINGS.set((
        stats.early_termination_savings(),
        stats.emitted,
        stats.consumed,
    ));

    let mut group = c.benchmark_group("shard_topk/fa_min_k10");
    group.bench_function("unsharded", |bench| {
        bench.iter(|| black_box(fagin_min_topk(&[&a.flat, &b.flat], K).unwrap()))
    });
    group.bench_function("sharded", |bench| {
        bench.iter(|| {
            a.sharded.reset_scan();
            b.sharded.reset_scan();
            black_box(fagin_min_topk(&[&a.sharded, &b.sharded], K).unwrap())
        })
    });
    group.finish();

    let stats = cache.stats();
    eprintln!(
        "shared cache after timing: {stats} ({:.1}% lifetime hit rate)",
        100.0 * stats.hit_rate()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench_shard.json");

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).json_path(JSON_PATH);
    targets = bench_shard
);

/// Re-opens the report the criterion shim just flushed and grafts the
/// shard metrics in (via the shared [`garlic_bench::report`] plumbing):
/// the sharded-vs-naive speedup (the tentpole claim) and the frontier's
/// measured savings. `perf_gate`'s parser only scans `name`/`median_ns`
/// pairs, so the extra object is invisible to the gate.
fn patch_report() {
    let Ok(json) = std::fs::read_to_string(JSON_PATH) else {
        return;
    };
    let naive = report::median_of(&json, "shard_scan/deep_prefix/naive_scatter");
    let sharded = report::median_of(&json, "shard_scan/deep_prefix/sharded");
    let speedup = match (naive, sharded) {
        (Some(n), Some(s)) if s > 0.0 => n / s,
        _ => return,
    };
    let (savings, emitted, consumed) = SAVINGS.get().copied().unwrap_or((0.0, 0, 0));
    let members = format!(
        "\"shard_metrics\": {{\n    \"shards\": {SHARDS},\n    \"n_objects\": {},\n    \
         \"scan_speedup_vs_naive\": {speedup:.4},\n    \
         \"early_termination_savings\": {savings:.4},\n    \
         \"entries_emitted\": {emitted},\n    \"entries_consumed\": {consumed}\n  }}",
        n_objects()
    );
    if !report::graft_members(JSON_PATH, &members) {
        return;
    }
    eprintln!(
        "bench_shard: {speedup:.2}x sharded-vs-naive scan speedup, \
         {:.1}% early-termination savings → {JSON_PATH}",
        100.0 * savings
    );
}

fn main() {
    benches();
    patch_report();
}
