//! The segment-format-v2 benchmark: compression ratio, grade-fence block
//! skipping, and scan-resistant cache admission — the three tentpole
//! claims of the v2 format, measured on one workload.
//!
//! The corpus is two attributes of `N` objects (`GARLIC_COMPRESS_N`
//! overrides the 1M default) with grades quantized to ~1000 levels — the
//! dictionary regime the v2 encoder targets. The report carries:
//!
//! * `compress_scan/{warm,cold}_{v1,v2}` — timed full-stream scans of the
//!   same attribute in both formats, against a warm cache (pure decode)
//!   and a cleared cache (read + verify-free decode + admission);
//! * `metric_bytes_per_entry/{v1,v2}` — on-disk bytes per entry from
//!   [`SegmentInfo`], the compression claim (`v2 <= 0.5 * v1` gated);
//! * `metric_hinted_blocks/{loaded,total}` — data blocks actually loaded
//!   by a deep scan whose cursor carries the A₀′ k=10 threshold as its
//!   stop hint, vs the segment's data-block count (`<= 0.5` gated: the
//!   grade fences must skip at least half the region);
//! * `metric_hot_hit_rate/{scan_free,tinylfu}` and
//!   `metric_strict_lru_hit_rate/value` — hot-working-set hit rates under
//!   an interleaved cold scan: the TinyLFU cache must stay within ~10% of
//!   a scan-free run (`scan_free/tinylfu <= 1.12` gated) while strict LRU
//!   collapses (`strict/tinylfu <= 0.75` gated).
//!
//! The pseudo-benchmark `metric_*` entries exist because `perf_gate
//! --pair` addresses medians by name — dimensionless ratios ride the same
//! rails as timings. Every hinted scan is equality-gated against the
//! unbounded stream before anything is timed or recorded, so the skipping
//! claims can never come from a wrong answer.

use std::sync::{Arc, OnceLock};

use criterion::{black_box, criterion_group, Criterion};
use garlic_agg::Grade;
use garlic_bench::report;
use garlic_core::access::{GradedSource, MemorySource};
use garlic_core::algorithms::fa_min::fagin_min_run;
use garlic_core::{GradedEntry, ObjectId};
use garlic_storage::format::FORMAT_V1;
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};

const K: usize = 10;
const BATCH: usize = 1024;
const GRADE_LEVELS: u64 = 1000;

fn n_objects() -> usize {
    std::env::var("GARLIC_COMPRESS_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Everything the bench body measures outside criterion timing, stashed
/// for `main` to patch into the JSON report.
#[derive(Clone, Copy)]
struct Metrics {
    bytes_per_entry_v1: f64,
    bytes_per_entry_v2: f64,
    threshold: f64,
    blocks_loaded: u64,
    blocks_total: u64,
    hit_rate_scan_free: f64,
    hit_rate_tinylfu: f64,
    hit_rate_strict: f64,
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

/// A deterministic quantized grade list: ~[`GRADE_LEVELS`] distinct
/// values, pseudo-randomly permuted over the id space.
fn grade_list(n: usize, seed: u64) -> Vec<Grade> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Grade::clamped(((x >> 33) % GRADE_LEVELS) as f64 / (GRADE_LEVELS - 1) as f64)
        })
        .collect()
}

/// Streams the whole sorted order through the batched cursor path.
fn full_scan(source: &SegmentSource, buf: &mut Vec<GradedEntry>) -> usize {
    buf.clear();
    let mut cursor = source.open_sorted();
    while cursor.next_batch(buf, BATCH) > 0 {}
    buf.len()
}

/// Streams with an advisory stop-threshold hint; returns entries emitted.
fn hinted_scan(source: &SegmentSource, bound: Grade, buf: &mut Vec<GradedEntry>) -> usize {
    buf.clear();
    let mut cursor = source.open_sorted().with_bound(bound);
    while cursor.next_batch(buf, BATCH) > 0 {}
    buf.len()
}

/// One round of hot-working-set probes: one random access per hot table
/// block. Returns how many block requests the round issued.
fn probe_hot(seg: &SegmentSource, hot_blocks: usize, out: &mut Vec<Option<Grade>>) -> usize {
    let epb = seg.block_size() / 16;
    let probes: Vec<ObjectId> = (0..hot_blocks)
        .map(|b| ObjectId((b * epb) as u64))
        .collect();
    out.clear();
    seg.random_batch(&probes, out);
    probes.len()
}

/// The hot-set-under-scan experiment on one cache policy: warm a set of
/// `hot` table blocks, then interleave hot probes with a cold sequential
/// scan of the data region (in chunks of `chunk` blocks — a working set
/// the size of the whole cache between consecutive probes). Returns the
/// hit rate over the interleaved hot probes alone. With `scan: false` the
/// probes run back-to-back — the scan-free reference.
fn hot_hit_rate(path: &std::path::Path, cache: Arc<BlockCache>, hot: usize, scan: bool) -> f64 {
    let seg = SegmentSource::open(path, Arc::clone(&cache)).unwrap();
    let epb = seg.block_size() / 16;
    let data_blocks = seg.blocks_per_region() as usize;
    let chunk = cache.capacity().max(1);
    let mut answers = Vec::new();
    let mut entries = Vec::new();
    // Warm-up: three rounds, enough for TinyLFU to count the set and the
    // SLRU to promote it to the protected segment.
    for _ in 0..3 {
        probe_hot(&seg, hot, &mut answers);
    }
    let (mut hot_hits, mut hot_requests) = (0u64, 0u64);
    let mut scanned = 0usize;
    loop {
        if scan {
            // One cache-capacity worth of cold data blocks between probes.
            let ranks = scanned * epb..((scanned + chunk) * epb).min(seg.len());
            entries.clear();
            seg.sorted_batch(ranks.start, ranks.len(), &mut entries);
            scanned += chunk;
        } else {
            scanned += chunk;
        }
        let before = cache.stats();
        probe_hot(&seg, hot, &mut answers);
        let after = cache.stats();
        hot_hits += after.hits - before.hits;
        hot_requests += (after.hits + after.misses) - (before.hits + before.misses);
        if scanned * epb >= seg.len().max(data_blocks * epb) {
            break;
        }
    }
    // Floor keeps the rate strictly positive: perf_gate drops zero-valued
    // medians, and strict LRU genuinely reaches 0% here.
    (hot_hits as f64 / hot_requests.max(1) as f64).max(1e-4)
}

fn bench_compress(c: &mut Criterion) {
    let n = n_objects();
    eprintln!("bench_compress: N = {n}, {GRADE_LEVELS} grade levels");

    let list_a = grade_list(n, 41);
    let list_b = grade_list(n, 97);
    let dir = std::env::temp_dir().join(format!("garlic-bench-compress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1_path = dir.join("compress-v1.seg");
    let v2_path = dir.join("compress-v2.seg");
    let info_v1 = SegmentWriter::new()
        .with_version(FORMAT_V1)
        .unwrap()
        .write_grades(&v1_path, &list_a)
        .unwrap();
    let info_v2 = SegmentWriter::new()
        .write_grades(&v2_path, &list_a)
        .unwrap();
    let bytes_per_entry_v1 = info_v1.bytes as f64 / n as f64;
    let bytes_per_entry_v2 = info_v2.bytes as f64 / n as f64;
    eprintln!(
        "bytes/entry: v1 {bytes_per_entry_v1:.2}, v2 {bytes_per_entry_v2:.2} \
         ({:.2}x smaller)",
        bytes_per_entry_v1 / bytes_per_entry_v2
    );

    // Warm caches sized for the whole file-wide block range of each copy.
    let cache_v1 = Arc::new(BlockCache::new(16_384));
    let cache_v2 = Arc::new(BlockCache::new(16_384));
    let seg_v1 = SegmentSource::open(&v1_path, Arc::clone(&cache_v1)).unwrap();
    let seg_v2 = SegmentSource::open(&v2_path, Arc::clone(&cache_v2)).unwrap();

    // Equality gate: both formats stream the identical skeleton.
    let mut run_v1 = Vec::with_capacity(n);
    let mut run_v2 = Vec::with_capacity(n);
    assert_eq!(full_scan(&seg_v1, &mut run_v1), n);
    assert_eq!(full_scan(&seg_v2, &mut run_v2), n);
    assert_eq!(run_v1, run_v2, "v1 and v2 streams are bit-identical");

    // The stop-threshold hint: A₀′'s k=10 threshold g₀ over both
    // attributes — exactly what an engine consumer would hand the cursor.
    let mem_a = MemorySource::from_grades(&list_a);
    let mem_b = MemorySource::from_grades(&list_b);
    let run = fagin_min_run(&[&mem_a, &mem_b], K).unwrap();
    let threshold = run.threshold;
    drop((mem_a, mem_b));

    // Fence-skipping measurement on a dedicated cold cache: every loaded
    // block misses exactly once, so the miss delta is the load count.
    let skip_cache = Arc::new(BlockCache::new(16_384));
    let skip_seg = SegmentSource::open(&v2_path, Arc::clone(&skip_cache)).unwrap();
    let mut hinted = Vec::new();
    let before = skip_cache.stats();
    let emitted = hinted_scan(&skip_seg, threshold, &mut hinted);
    let after = skip_cache.stats();
    let blocks_loaded = after.misses - before.misses;
    let blocks_total = skip_seg.blocks_per_region();
    assert_eq!(
        hinted[..],
        run_v2[..emitted],
        "the hinted scan emits an exact prefix of the unbounded stream"
    );
    assert!(
        run_v2[emitted..].iter().all(|e| e.grade < threshold),
        "only entries below the threshold were withheld"
    );
    eprintln!(
        "hinted scan at g0 = {:.4}: emitted {emitted} of {n} entries, \
         loaded {blocks_loaded} of {blocks_total} data blocks",
        threshold.value()
    );

    // Scan-resistant admission: hot hit rate under an interleaved cold
    // scan, on the TinyLFU default vs strict LRU vs a scan-free run.
    let data_blocks = seg_v2.blocks_per_region() as usize;
    let capacity = (data_blocks / 4).clamp(8, 256);
    let hot = (capacity / 4).max(2);
    let hit_rate_scan_free =
        hot_hit_rate(&v2_path, Arc::new(BlockCache::new(capacity)), hot, false);
    let hit_rate_tinylfu = hot_hit_rate(&v2_path, Arc::new(BlockCache::new(capacity)), hot, true);
    let hit_rate_strict = hot_hit_rate(
        &v2_path,
        Arc::new(BlockCache::strict_lru(capacity)),
        hot,
        true,
    );
    eprintln!(
        "hot hit rate ({hot} hot table blocks, {capacity}-block cache, cold data scan): \
         scan-free {:.1}%, tinylfu {:.1}%, strict LRU {:.1}%",
        100.0 * hit_rate_scan_free,
        100.0 * hit_rate_tinylfu,
        100.0 * hit_rate_strict
    );

    let _ = METRICS.set(Metrics {
        bytes_per_entry_v1,
        bytes_per_entry_v2,
        threshold: threshold.value(),
        blocks_loaded,
        blocks_total,
        hit_rate_scan_free,
        hit_rate_tinylfu,
        hit_rate_strict,
    });

    let mut group = c.benchmark_group("compress_scan");
    group.bench_function("warm_v1", |bench| {
        bench.iter(|| black_box(full_scan(&seg_v1, &mut run_v1)))
    });
    group.bench_function("warm_v2", |bench| {
        bench.iter(|| black_box(full_scan(&seg_v2, &mut run_v2)))
    });
    group.bench_function("cold_v1", |bench| {
        bench.iter(|| {
            cache_v1.clear();
            black_box(full_scan(&seg_v1, &mut run_v1))
        })
    });
    group.bench_function("cold_v2", |bench| {
        bench.iter(|| {
            cache_v2.clear();
            black_box(full_scan(&seg_v2, &mut run_v2))
        })
    });
    group.finish();

    let stats = cache_v2.stats();
    eprintln!("v2 cache after timing: {stats}");
    let _ = std::fs::remove_dir_all(&dir);
}

const JSON_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../target/bench_compress.json"
);

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).json_path(JSON_PATH);
    targets = bench_compress
);

/// Re-opens the report the criterion shim just flushed and grafts in the
/// measured metrics (via the shared [`garlic_bench::report`] plumbing): a
/// `metric_benchmarks` list of pseudo-benchmarks (so `perf_gate --pair`
/// can gate the dimensionless ratios by name — its parser scans
/// `name`/`median_ns` pairs wherever they appear) plus a human-oriented
/// `compress_metrics` object.
fn patch_report() {
    let Some(m) = METRICS.get() else { return };
    let pseudo = report::metric_benchmarks(&[
        ("metric_bytes_per_entry/v1", m.bytes_per_entry_v1),
        ("metric_bytes_per_entry/v2", m.bytes_per_entry_v2),
        ("metric_hinted_blocks/loaded", m.blocks_loaded as f64),
        ("metric_hinted_blocks/total", m.blocks_total as f64),
        ("metric_hot_hit_rate/scan_free", m.hit_rate_scan_free),
        ("metric_hot_hit_rate/tinylfu", m.hit_rate_tinylfu),
        ("metric_strict_lru_hit_rate/value", m.hit_rate_strict),
    ]);
    let members = format!(
        "{pseudo},\n  \"compress_metrics\": {{\n    \
         \"n_objects\": {},\n    \"k\": {K},\n    \"threshold\": {:.6},\n    \
         \"compression_ratio\": {:.4},\n    \"blocks_skipped_ratio\": {:.4},\n    \
         \"hot_hit_rate_vs_scan_free\": {:.4}\n  }}",
        n_objects(),
        m.threshold,
        m.bytes_per_entry_v1 / m.bytes_per_entry_v2,
        1.0 - m.blocks_loaded as f64 / m.blocks_total.max(1) as f64,
        m.hit_rate_tinylfu / m.hit_rate_scan_free,
    );
    if !report::graft_members(JSON_PATH, &members) {
        return;
    }
    eprintln!(
        "bench_compress: {:.2}x compression, {:.1}% blocks skipped, \
         {:.1}%/{:.1}%/{:.1}% hot hit rates (scan-free/tinylfu/strict) → {JSON_PATH}",
        m.bytes_per_entry_v1 / m.bytes_per_entry_v2,
        100.0 * (1.0 - m.blocks_loaded as f64 / m.blocks_total.max(1) as f64),
        100.0 * m.hit_rate_scan_free,
        100.0 * m.hit_rate_tinylfu,
        100.0 * m.hit_rate_strict,
    );
}

fn main() {
    benches();
    patch_report();
}
