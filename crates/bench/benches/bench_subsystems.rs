//! Subsystem-side costs: how long the simulated QBIC / text / relational
//! servers take to answer an atomic query (the "inside the black box" cost
//! Section 5's middleware measure deliberately excludes).

use criterion::{criterion_group, criterion_main, Criterion};
use garlic_subsys::{AtomicQuery, QbicStore, RelationalStore, Subsystem, Target, TextStore, Value};
use std::hint::black_box;

fn bench_qbic(c: &mut Criterion) {
    let mut rng = garlic_workload::seeded_rng(11);
    let store = QbicStore::synthetic("qbic", 5_000, &mut rng);
    let color = AtomicQuery::new("Color", Target::text("red"));
    let shape = AtomicQuery::new("Shape", Target::text("round"));

    let mut group = c.benchmark_group("subsystem_evaluate");
    group.bench_function("qbic_color_5k", |b| {
        b.iter(|| black_box(store.evaluate(black_box(&color)).unwrap()))
    });
    group.bench_function("qbic_shape_5k", |b| {
        b.iter(|| black_box(store.evaluate(black_box(&shape)).unwrap()))
    });
    group.finish();
}

fn bench_text(c: &mut Criterion) {
    let mut rng = garlic_workload::seeded_rng(12);
    let store = TextStore::synthetic("text", "Body", 2_000, 500, 60, &mut rng);
    let query = AtomicQuery::new("Body", Target::terms(&["w3", "w17", "w211"]));

    c.bench_function("subsystem_evaluate/text_tfidf_2k", |b| {
        b.iter(|| black_box(store.evaluate(black_box(&query)).unwrap()))
    });
}

fn bench_relational(c: &mut Criterion) {
    let mut store = RelationalStore::new("rel", &["Artist", "Year"]);
    let artists = ["Beatles", "Kinks", "Who", "Zombies", "Byrds"];
    for i in 0..10_000u64 {
        store.insert(vec![
            Value::text(artists[(i % 5) as usize]),
            Value::Number(1960.0 + (i % 10) as f64),
        ]);
    }
    let query = AtomicQuery::new("Artist", Target::text("Beatles"));

    c.bench_function("subsystem_evaluate/relational_eq_10k", |b| {
        b.iter(|| black_box(store.evaluate(black_box(&query)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_qbic, bench_text, bench_relational
}
criterion_main!(benches);
