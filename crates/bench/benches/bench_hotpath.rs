//! The headline micro-benchmark of the slab refactor: the flattened top-k
//! hot path vs the pre-slab bookkeeping, through the same
//! `CountingSource<Box<dyn GradedSource>>` stack the middleware executes
//! over (N = 100k, m = 3).
//!
//! Three layers are measured:
//!
//! * `full_scan` — engine full-scan throughput (the naive baseline's
//!   workload: stream every list to depth N, score every object, select
//!   the top k). `hashmap_partial` replicates the pre-slab engine faithfully
//!   — a SipHash `HashMap<ObjectId, Partial>` with two boxed
//!   `Vec<Option<_>>`s per object, a cloned grade vector per scoring call,
//!   and a full sort-and-truncate selection — while `slab_engine` is the
//!   shipping path (fx-hashed slot map, m-strided flat arrays, bitmask
//!   completion, borrowed-slice scoring, bounded-heap selection). The
//!   acceptance bar is ≥ 2× throughput.
//! * `fa_topk` — the same comparison embedded in algorithm A₀ end to end
//!   (sorted phase to k matches + random completion + selection).
//! * `segment_random` — grade completion against a warm disk segment:
//!   a per-object `random_access` loop vs one block-grouped
//!   [`GradedSource::random_batch`] call over the same scattered probes.
//!
//! Every comparison is equality-gated before timing: both sides must
//! produce bit-identical answers. Results also land in
//! `target/bench_hotpath.json` (shim JSON output); CI archives the file
//! and gates it against the committed `BENCH_hotpath_baseline.json` via
//! the `perf_gate` bin.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use criterion::{black_box, criterion_group, Criterion};
use garlic_agg::iterated::min_agg;
use garlic_agg::{Aggregation, Grade};
use garlic_bench::report;
use garlic_core::access::CountingSource;
use garlic_core::algorithms::fa::fagin_topk;
use garlic_core::algorithms::naive::naive_topk;
use garlic_core::{GradedEntry, GradedSource, ObjectId, TopK};
use garlic_middleware::{Catalog, Garlic, GarlicQuery, Telemetry};
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};
use garlic_subsys::{Target, VectorSubsystem};
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

const N: usize = 100_000;
const M: usize = 3;
const K: usize = 10;
const BATCH: usize = 1024;
const PROBES: usize = 8192;

type Boxed = CountingSource<Box<dyn GradedSource>>;

/// The middleware-shaped source stack: independent lists behind trait
/// objects behind metering counters.
fn boxed_sources() -> Vec<Boxed> {
    let mut rng = garlic_workload::seeded_rng(24117);
    let skeleton = Skeleton::random(M, N, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    db.to_sources()
        .into_iter()
        .map(|s| CountingSource::new(Box::new(s) as Box<dyn GradedSource>))
        .collect()
}

/// The pre-slab candidate bookkeeping, exactly as the engine kept it before
/// the flat rebuild: two heap `Vec<Option<_>>`s per object behind a
/// SipHash-keyed map.
struct SeedPartial {
    grades: Vec<Option<Grade>>,
    ranks: Vec<Option<usize>>,
    seen_sorted: usize,
}

/// The pre-slab engine's full scan: batched sorted streaming (identical
/// access plan to the slab engine — the access layer is not what is being
/// compared), folded into the HashMap bookkeeping, scored by cloning each
/// grade vector, selected by a full sort + truncate.
fn hashmap_full_scan<A: Aggregation>(sources: &[Boxed], agg: &A, k: usize) -> TopK {
    let m = sources.len();
    let n = sources[0].len();
    let mut partial: HashMap<ObjectId, SeedPartial> = HashMap::new();
    let mut bufs: Vec<Vec<GradedEntry>> = vec![Vec::with_capacity(BATCH); m];
    let mut depth = 0usize;
    while depth < n {
        let levels = (n - depth).min(BATCH);
        for (buf, source) in bufs.iter_mut().zip(sources) {
            buf.clear();
            source.sorted_batch(depth, levels, buf);
        }
        for level in 0..levels {
            for (i, buf) in bufs.iter().enumerate() {
                let entry = buf[level];
                let p = partial.entry(entry.object).or_insert_with(|| SeedPartial {
                    grades: vec![None; m],
                    ranks: vec![None; m],
                    seen_sorted: 0,
                });
                p.grades[i] = Some(entry.grade);
                p.ranks[i] = Some(depth + level);
                p.seen_sorted += 1;
            }
        }
        depth += levels;
    }
    // Pre-slab scoring: one cloned Vec<Grade> per object.
    let mut scored: Vec<GradedEntry> = partial
        .iter()
        .map(|(&id, p)| {
            let vec: Vec<Grade> = p.grades.iter().map(|g| g.expect("full scan")).collect();
            GradedEntry::new(id, agg.combine(&vec))
        })
        .collect();
    // Pre-slab selection: full sort, then truncate.
    scored.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
    scored.truncate(k);
    TopK::from_entries(scored)
}

fn bench_full_scan(c: &mut Criterion) {
    let sources = boxed_sources();
    let agg = min_agg();

    // Equality gate: identical entries (objects, grades, tie order).
    let reference = hashmap_full_scan(&sources, &agg, K);
    let slab = naive_topk(&sources, &agg, K).unwrap();
    assert_eq!(reference.entries(), slab.entries(), "gate: same answers");

    let mut group = c.benchmark_group(format!("full_scan/N{N}_m{M}_k{K}"));
    group.bench_function("hashmap_partial", |b| {
        b.iter(|| black_box(hashmap_full_scan(&sources, &agg, K).len()))
    });
    group.bench_function("slab_engine", |b| {
        b.iter(|| black_box(naive_topk(&sources, &agg, K).unwrap().len()))
    });
    group.finish();
}

/// The pre-slab A₀: HashMap sorted phase to k matches, per-object random
/// completion, cloned-vector scoring, full-sort selection.
fn hashmap_fagin<A: Aggregation>(sources: &[Boxed], agg: &A, k: usize) -> TopK {
    let m = sources.len();
    let n = sources[0].len();
    let mut partial: HashMap<ObjectId, SeedPartial> = HashMap::new();
    let mut matched = 0usize;
    let mut depth = 0usize;
    while matched < k && depth < n {
        for (i, source) in sources.iter().enumerate() {
            let entry = source.sorted_access(depth).expect("depth < N");
            let p = partial.entry(entry.object).or_insert_with(|| SeedPartial {
                grades: vec![None; m],
                ranks: vec![None; m],
                seen_sorted: 0,
            });
            p.grades[i] = Some(entry.grade);
            p.ranks[i] = Some(depth);
            p.seen_sorted += 1;
            if p.seen_sorted == m {
                matched += 1;
            }
        }
        depth += 1;
    }
    for (&id, p) in partial.iter_mut() {
        for (i, source) in sources.iter().enumerate() {
            if p.grades[i].is_none() {
                p.grades[i] = Some(source.random_access(id).expect("every object graded"));
            }
        }
    }
    let mut scored: Vec<GradedEntry> = partial
        .iter()
        .map(|(&id, p)| {
            let vec: Vec<Grade> = p.grades.iter().map(|g| g.expect("completed")).collect();
            GradedEntry::new(id, agg.combine(&vec))
        })
        .collect();
    scored.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
    scored.truncate(k);
    TopK::from_entries(scored)
}

fn bench_fa_topk(c: &mut Criterion) {
    let sources = boxed_sources();
    let agg = min_agg();

    let reference = hashmap_fagin(&sources, &agg, K);
    let slab = fagin_topk(&sources, &agg, K).unwrap();
    assert_eq!(reference.entries(), slab.entries(), "gate: same answers");

    let mut group = c.benchmark_group(format!("fa_topk/N{N}_m{M}_k{K}"));
    group.bench_function("hashmap_partial", |b| {
        b.iter(|| black_box(hashmap_fagin(&sources, &agg, K).len()))
    });
    group.bench_function("slab_engine", |b| {
        b.iter(|| black_box(fagin_topk(&sources, &agg, K).unwrap().len()))
    });
    group.finish();
}

/// Interleaved medians for the telemetry gate, stashed for `main` to
/// patch into the JSON report: `(unattached_ns, attached_ns)`.
static ATTACHED_PAIR: OnceLock<(f64, f64)> = OnceLock::new();

/// The telemetry-overhead pair (the observability acceptance gate): the
/// identical A₀ conjunction through the full middleware stack with a
/// metrics registry attached vs unattached. The engine's phase profile is
/// always on; attachment adds one registry check plus one histogram
/// record *per query*, never per entry — CI gates
/// `attached <= 1.05x unattached` within this report.
///
/// A 5% bound is well inside this environment's run-to-run drift, so the
/// gated numbers are **interleaved**: the two sides alternate within each
/// round (order flipping every round), and the per-side medians land in
/// the report as `metric_telemetry/*` pseudo-benchmarks. The criterion
/// group still reports both sides for the human-readable trajectory.
fn bench_fa_attached(c: &mut Criterion) {
    let mut rng = garlic_workload::seeded_rng(24117);
    let skeleton = Skeleton::random(M, N, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    let mut subsystem = VectorSubsystem::new("vectors", N);
    for (attr, source) in ["A", "B", "C"].into_iter().zip(db.to_sources()) {
        subsystem = subsystem.with_source(attr, source);
    }
    let mut catalog = Catalog::new();
    catalog.register(subsystem).unwrap();
    let plain = Garlic::new(catalog);
    let telemetry = Telemetry::new();
    let attached = plain.clone().with_telemetry(Arc::clone(&telemetry));

    let query = GarlicQuery::and(
        GarlicQuery::atom("A", Target::text("t")),
        GarlicQuery::atom("B", Target::text("t")),
    );

    // Equality gate: attachment must not change answers or billed cost.
    let want = plain.top_k(&query, K).unwrap();
    let got = attached.top_k(&query, K).unwrap();
    assert_eq!(want.answers.entries(), got.answers.entries(), "gate");
    assert_eq!(want.stats, got.stats, "gate: same billed cost");

    let mut group = c.benchmark_group(format!("fa_attached/N{N}_m{M}_k{K}"));
    group.bench_function("unattached", |b| {
        b.iter(|| black_box(plain.top_k(black_box(&query), K).unwrap().answers.len()))
    });
    group.bench_function("attached", |b| {
        b.iter(|| black_box(attached.top_k(black_box(&query), K).unwrap().answers.len()))
    });
    group.finish();

    let time_side = |g: &Garlic| -> f64 {
        const PER_ROUND: usize = 16;
        let t = std::time::Instant::now();
        for _ in 0..PER_ROUND {
            black_box(g.top_k(black_box(&query), K).unwrap().answers.len());
        }
        t.elapsed().as_nanos() as f64 / PER_ROUND as f64
    };
    // One untimed warm-up pass per side, then 31 alternating rounds.
    let (mut un, mut at) = (Vec::new(), Vec::new());
    time_side(&plain);
    time_side(&attached);
    for round in 0..31 {
        if round % 2 == 0 {
            un.push(time_side(&plain));
            at.push(time_side(&attached));
        } else {
            at.push(time_side(&attached));
            un.push(time_side(&plain));
        }
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (un_ns, at_ns) = (median(&mut un), median(&mut at));
    let _ = ATTACHED_PAIR.set((un_ns, at_ns));
    eprintln!(
        "fa_attached interleaved medians: unattached {un_ns:.0} ns, \
         attached {at_ns:.0} ns ({:.3}x); {} queries metered",
        at_ns / un_ns,
        telemetry.snapshot().counter("middleware.queries")
    );
}

fn bench_segment_random(c: &mut Criterion) {
    let mut rng = garlic_workload::seeded_rng(9405);
    let skeleton = Skeleton::random(1, N, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    let memory = db.to_sources().pop().expect("one list");

    let dir = std::env::temp_dir().join(format!("garlic-bench-hotpath-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hotpath.seg");
    SegmentWriter::new()
        .write_graded_set(&path, memory.graded_set())
        .unwrap();
    let warm = SegmentSource::open(&path, Arc::new(BlockCache::new(1024))).unwrap();

    // Scattered probes across the whole id range, mostly hits.
    let probes: Vec<ObjectId> = (0..PROBES as u64)
        .map(|i| ObjectId((i * 48_271) % (N as u64 + 13)))
        .collect();

    // Equality gate.
    let mut batched = Vec::with_capacity(probes.len());
    warm.random_batch(&probes, &mut batched);
    let looped: Vec<Option<Grade>> = probes.iter().map(|&p| warm.random_access(p)).collect();
    assert_eq!(batched, looped, "gate: batched probes = per-object probes");

    let mut group = c.benchmark_group(format!("segment_random/N{N}_probes{PROBES}"));
    group.bench_function("per_object_loop", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &p in &probes {
                hits += u64::from(warm.random_access(p).is_some());
            }
            black_box(hits)
        })
    });
    let mut out: Vec<Option<Grade>> = Vec::with_capacity(probes.len());
    group.bench_function("block_grouped_batch", |b| {
        b.iter(|| {
            out.clear();
            warm.random_batch(&probes, &mut out);
            black_box(out.iter().filter(|g| g.is_some()).count())
        })
    });
    group.finish();
}

// Bench executables run with the *package* root as cwd; anchor the
// report in the workspace target dir regardless.
const JSON_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../target/bench_hotpath.json"
);

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).json_path(JSON_PATH);
    targets = bench_full_scan, bench_fa_topk, bench_fa_attached, bench_segment_random
);

/// Grafts the interleaved telemetry-pair medians into the report the
/// criterion shim just flushed, as `perf_gate --pair`-addressable
/// pseudo-benchmarks.
fn patch_report() {
    let Some(&(unattached, attached)) = ATTACHED_PAIR.get() else {
        return;
    };
    let members = report::metric_benchmarks(&[
        ("metric_telemetry/unattached_query_ns", unattached),
        ("metric_telemetry/attached_query_ns", attached),
    ]);
    let _ = report::graft_members(JSON_PATH, &members);
}

fn main() {
    benches();
    patch_report();
}
