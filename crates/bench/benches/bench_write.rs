//! The write-path benchmark: sustained upsert throughput through the
//! WAL + memtable, merged-read latency while an overlay shadows the base
//! segment, and crash-recovery replay time — the operational claims of
//! the `LiveSource` store, measured on one workload.
//!
//! The corpus is `N` objects (`GARLIC_WRITE_N` overrides the 50k
//! default) with quantized grades. The report carries:
//!
//! * `write_upsert/batch256` — one durable (fsynced) 256-op WAL append
//!   plus memtable apply per iteration, the sustained ingest unit;
//! * `live_read/merged` vs `live_read/segment` — a full sorted stream of
//!   the same collection through the snapshot merge (10% of the entries
//!   overwritten in the memtable overlay) vs straight off the compacted
//!   segment (`merged <= 3x segment` gated: absorbing writes must not
//!   blow up read latency — note a pinned snapshot memoizes its merge,
//!   so steady-state reads are RAM-speed and the first pass pays the
//!   base-segment scan);
//! * `recovery/tail_1x` vs `recovery/tail_2x` — a cold `LiveSource::open`
//!   replaying a WAL tail of `N/2` vs `N` ops (`2x <= 3.5x of 1x` gated:
//!   recovery stays linear in the tail it replays — a doubled tail costs
//!   ~2x plus the memtable's log factor, with noise headroom);
//! * `metric_write/ops_per_sec` and `metric_recovery/ns_per_op` — the
//!   derived rates, patched in as pseudo-benchmarks for `perf_gate`.
//!
//! Every timed structure is equality-gated against a fresh
//! [`MemorySource`] over the same visible pairs before anything is
//! recorded, so the numbers can never come from a wrong answer.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use garlic_agg::Grade;
use garlic_bench::report;
use garlic_core::access::{GradedSource, MemorySource};
use garlic_core::{GradedEntry, ObjectId};
use garlic_storage::{BlockCache, LiveOptions, LiveSource, Manifest, SegmentSource, WalOp};

const BATCH: usize = 256;
const GRADE_LEVELS: u64 = 1000;

fn n_objects() -> usize {
    std::env::var("GARLIC_WRITE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

/// Everything measured outside criterion timing, stashed for `main` to
/// patch into the JSON report.
#[derive(Clone, Copy)]
struct Metrics {
    ops_per_sec: f64,
    recovery_ns_per_op: f64,
    overlay_entries: usize,
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

/// Deterministic quantized grade for `(id, round)` — an LCG keyed on
/// both, so overwrites genuinely move objects across the ranking.
fn grade_for(id: u64, round: u64) -> Grade {
    let mut x = (id ^ round.wrapping_mul(0x9e3779b97f4a7c15)) | 1;
    x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    Grade::clamped(((x >> 33) % GRADE_LEVELS) as f64 / (GRADE_LEVELS - 1) as f64)
}

fn live_options() -> LiveOptions {
    LiveOptions {
        // The bench controls its own freeze/compact points.
        memtable_limit: usize::MAX,
        auto_compact: false,
        ..LiveOptions::default()
    }
}

fn open_live(dir: &Path) -> LiveSource {
    LiveSource::open(dir, Arc::new(BlockCache::new(4096)), live_options()).unwrap()
}

/// Appends `ids` as one round of upserts, `BATCH` ops per durable record.
fn ingest(live: &LiveSource, ids: impl Iterator<Item = u64>, round: u64) {
    let mut batch = Vec::with_capacity(BATCH);
    for id in ids {
        batch.push(WalOp::Upsert {
            object: ObjectId(id),
            grade: grade_for(id, round),
        });
        if batch.len() == BATCH {
            live.write_batch(&batch).unwrap();
            batch.clear();
        }
    }
    live.write_batch(&batch).unwrap();
}

/// Streams the whole sorted order in `BATCH`-entry chunks.
fn full_stream(source: &dyn GradedSource, buf: &mut Vec<GradedEntry>) -> usize {
    buf.clear();
    let mut rank = 0;
    loop {
        let got = source.sorted_batch(rank, BATCH, buf);
        rank += got;
        if got < BATCH {
            return buf.len();
        }
    }
}

/// Equality gate: the source must stream exactly the model's pairs in
/// skeleton order.
fn assert_matches_model(source: &dyn GradedSource, model: &BTreeMap<u64, Grade>, what: &str) {
    let want = MemorySource::from_pairs(model.iter().map(|(&id, &g)| (ObjectId(id), g)));
    let (mut got_run, mut want_run) = (Vec::new(), Vec::new());
    full_stream(source, &mut got_run);
    full_stream(&want, &mut want_run);
    assert_eq!(got_run, want_run, "{what} diverged from the memory oracle");
}

fn bench_write(c: &mut Criterion) {
    let n = n_objects();
    eprintln!("bench_write: N = {n}, batch = {BATCH}");
    let root = std::env::temp_dir().join(format!("garlic-bench-write-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // The read-latency store: N entries compacted into a base segment,
    // then 10% overwritten so the snapshot must merge a live overlay.
    let merged_dir = root.join("merged");
    let live = open_live(&merged_dir);
    ingest(&live, (0..n as u64).map(|i| i * 3), 0);
    assert!(live.flush().unwrap(), "base segment built");
    ingest(&live, (0..n as u64 / 10).map(|i| i * 30), 1);
    let mut model: BTreeMap<u64, Grade> = (0..n as u64)
        .map(|i| (i * 3, grade_for(i * 3, 0)))
        .collect();
    for i in 0..n as u64 / 10 {
        model.insert(i * 30, grade_for(i * 30, 1));
    }
    let snapshot = live.snapshot();
    assert_matches_model(snapshot.as_ref(), &model, "merged snapshot");
    let overlay_entries = n / 10;

    // The pure-segment baseline: the same base segment the merge overlays,
    // read directly (its own warm cache, same capacity).
    let manifest = Manifest::load(&merged_dir).unwrap();
    let segment_path = merged_dir.join(manifest.segment.as_deref().unwrap());
    let segment = SegmentSource::open(&segment_path, Arc::new(BlockCache::new(4096))).unwrap();
    assert_eq!(segment.len(), n, "the base holds the compacted state");

    // The ingest store and the sustained-throughput metric.
    let ingest_dir = root.join("ingest");
    let ingest_live = open_live(&ingest_dir);
    let warmup = Instant::now();
    ingest(&ingest_live, (0..8_192).map(|i| i * 7), 2);
    let ops_per_sec = 8_192.0 / warmup.elapsed().as_secs_f64();
    eprintln!("sustained ingest: {ops_per_sec:.0} durable upserts/sec");

    // Recovery fixtures: unflushed WAL tails of N/2 and N ops.
    let tail = (n / 2).max(BATCH);
    let (recover_1x, recover_2x) = (root.join("tail-1x"), root.join("tail-2x"));
    let mut tail_model = BTreeMap::new();
    {
        let live = open_live(&recover_1x);
        ingest(&live, (0..tail as u64).map(|i| i * 5), 3);
    }
    {
        let live = open_live(&recover_2x);
        ingest(&live, (0..2 * tail as u64).map(|i| i * 5), 3);
        for i in 0..2 * tail as u64 {
            tail_model.insert(i * 5, grade_for(i * 5, 3));
        }
    }
    // Equality gate: recovery reproduces the acknowledged state exactly.
    let recovered = open_live(&recover_2x);
    assert_matches_model(
        recovered.snapshot().as_ref(),
        &tail_model,
        "recovered store",
    );
    drop(recovered);
    let timer = Instant::now();
    drop(open_live(&recover_2x));
    let recovery_ns_per_op = timer.elapsed().as_nanos() as f64 / (2 * tail) as f64;
    eprintln!(
        "recovery: {recovery_ns_per_op:.0} ns/op over a {}-op tail",
        2 * tail
    );

    let _ = METRICS.set(Metrics {
        ops_per_sec,
        recovery_ns_per_op,
        overlay_entries,
    });

    let mut group = c.benchmark_group("write_upsert");
    let mut round = 16u64;
    group.bench_function("batch256", |bench| {
        bench.iter(|| {
            // Fresh grades over a rotating id window: every iteration is
            // one durable WAL record plus BATCH memtable applies.
            round += 1;
            let base = (round % 64) * BATCH as u64;
            let batch: Vec<WalOp> = (0..BATCH as u64)
                .map(|i| WalOp::Upsert {
                    object: ObjectId((base + i) * 7),
                    grade: grade_for(base + i, round),
                })
                .collect();
            ingest_live.write_batch(black_box(&batch)).unwrap();
        })
    });
    group.finish();

    let mut buf = Vec::with_capacity(n + overlay_entries);
    let mut group = c.benchmark_group("live_read");
    group.bench_function("merged", |bench| {
        bench.iter(|| black_box(full_stream(snapshot.as_ref(), &mut buf)))
    });
    group.bench_function("segment", |bench| {
        bench.iter(|| black_box(full_stream(&segment, &mut buf)))
    });
    group.finish();

    let mut group = c.benchmark_group("recovery");
    group.bench_function("tail_1x", |bench| {
        bench.iter(|| black_box(open_live(&recover_1x).live_len()))
    });
    group.bench_function("tail_2x", |bench| {
        bench.iter(|| black_box(open_live(&recover_2x).live_len()))
    });
    group.finish();

    drop(snapshot);
    drop(live);
    drop(ingest_live);
    let _ = std::fs::remove_dir_all(&root);
}

const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench_write.json");

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).json_path(JSON_PATH);
    targets = bench_write
);

/// Re-opens the report the criterion shim just flushed and grafts in the
/// measured rates (via the shared [`garlic_bench::report`] plumbing) as
/// `metric_benchmarks` pseudo-entries (addressable by `perf_gate --pair`)
/// plus a human-oriented `write_metrics` object.
fn patch_report() {
    let Some(m) = METRICS.get() else { return };
    let pseudo = report::metric_benchmarks(&[
        ("metric_write/ops_per_sec", m.ops_per_sec),
        ("metric_recovery/ns_per_op", m.recovery_ns_per_op),
    ]);
    let members = format!(
        "{pseudo},\n  \"write_metrics\": {{\n    \
         \"n_objects\": {},\n    \"batch\": {BATCH},\n    \"overlay_entries\": {},\n    \
         \"ops_per_sec\": {:.0},\n    \"recovery_ns_per_op\": {:.1}\n  }}",
        n_objects(),
        m.overlay_entries,
        m.ops_per_sec,
        m.recovery_ns_per_op,
    );
    if !report::graft_members(JSON_PATH, &members) {
        return;
    }
    eprintln!(
        "bench_write: {:.0} upserts/sec sustained, {:.0} ns/op recovery → {JSON_PATH}",
        m.ops_per_sec, m.recovery_ns_per_op,
    );
}

fn main() {
    benches();
    patch_report();
}
