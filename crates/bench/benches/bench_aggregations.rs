//! Micro-costs of the Section 3 aggregation zoo: combining a 4-grade vector
//! through each t-norm, mean, order statistic, and the Fagin–Wimmers
//! weighted rule.

use criterion::{criterion_group, criterion_main, Criterion};
use garlic_agg::iterated::{all_iterated_tnorms, min_agg};
use garlic_agg::means::{ArithmeticMean, GeometricMean, MedianAgg};
use garlic_agg::order_stat::KthLargest;
use garlic_agg::weighted::FaginWimmers;
use garlic_agg::{Aggregation, Grade};
use std::hint::black_box;

fn bench_combine(c: &mut Criterion) {
    let grades: Vec<Grade> = (0..4)
        .map(|i| Grade::clamped(0.15 + 0.2 * i as f64))
        .collect();

    let mut group = c.benchmark_group("aggregation_combine_m4");
    for agg in all_iterated_tnorms() {
        group.bench_function(agg.name(), |b| {
            b.iter(|| black_box(agg.combine(black_box(&grades))))
        });
    }
    group.bench_function("arithmetic-mean", |b| {
        b.iter(|| black_box(ArithmeticMean.combine(black_box(&grades))))
    });
    group.bench_function("geometric-mean", |b| {
        b.iter(|| black_box(GeometricMean.combine(black_box(&grades))))
    });
    group.bench_function("median", |b| {
        b.iter(|| black_box(MedianAgg.combine(black_box(&grades))))
    });
    group.bench_function("2nd-largest", |b| {
        let agg = KthLargest::new(2);
        b.iter(|| black_box(agg.combine(black_box(&grades))))
    });
    group.bench_function("fagin-wimmers(min)", |b| {
        let agg = FaginWimmers::new(min_agg(), &[4.0, 3.0, 2.0, 1.0]);
        b.iter(|| black_box(agg.combine(black_box(&grades))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_combine
}
criterion_main!(benches);
