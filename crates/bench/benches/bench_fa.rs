//! Wall-clock microbenchmarks for the conjunction evaluators: A₀, the
//! shrink refinement, A₀′, Ullman's algorithm, and the naive baseline, over
//! growing database sizes (complements experiment E01, which measures
//! *access counts* — here we confirm the wall-clock shape matches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garlic_agg::iterated::min_agg;
use garlic_core::access::MemorySource;
use garlic_core::algorithms::fa::{fagin_run, fagin_topk, FaOptions};
use garlic_core::algorithms::fa_min::fagin_min_topk;
use garlic_core::algorithms::naive::naive_topk;
use garlic_core::algorithms::ullman::ullman_topk;
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;
use std::hint::black_box;

fn workload(m: usize, n: usize, seed: u64) -> Vec<MemorySource> {
    let mut rng = garlic_workload::seeded_rng(seed);
    let skeleton = Skeleton::random(m, n, &mut rng);
    ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng).to_sources()
}

fn bench_conjunction(c: &mut Criterion) {
    let k = 10;
    let mut group = c.benchmark_group("conjunction_topk_m2");
    for n in [1_000usize, 4_000, 16_000] {
        let sources = workload(2, n, 1);
        group.bench_with_input(BenchmarkId::new("fa_a0", n), &n, |b, _| {
            b.iter(|| black_box(fagin_topk(&sources, &min_agg(), k).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("fa_a0_shrink", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    fagin_run(
                        &sources,
                        &min_agg(),
                        k,
                        FaOptions {
                            shrink_depths: true,
                        },
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fa_min_a0p", n), &n, |b, _| {
            b.iter(|| black_box(fagin_min_topk(&sources, k).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("ullman", n), &n, |b, _| {
            b.iter(|| black_box(ullman_topk(&sources, k).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive_topk(&sources, &min_agg(), k).unwrap()))
        });
    }
    group.finish();
}

fn bench_three_lists(c: &mut Criterion) {
    let k = 10;
    let n = 8_000;
    let sources = workload(3, n, 2);
    let mut group = c.benchmark_group("conjunction_topk_m3");
    group.bench_function("fa_a0", |b| {
        b.iter(|| black_box(fagin_topk(&sources, &min_agg(), k).unwrap()))
    });
    group.bench_function("fa_min_a0p", |b| {
        b.iter(|| black_box(fagin_min_topk(&sources, k).unwrap()))
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(naive_topk(&sources, &min_agg(), k).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conjunction, bench_three_lists
}
criterion_main!(benches);
