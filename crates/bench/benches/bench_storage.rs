//! The storage-layer benchmark: disk-backed `SegmentSource` vs
//! `MemorySource` over identical data at N = 100k, in the three regimes
//! that matter operationally —
//!
//! * **memory** — the RAM baseline every other number is read against;
//! * **segment_warm** — shared block cache large enough for the working
//!   set (steady state of a hot attribute; the acceptance bar is
//!   sorted-stream throughput within 3× of `MemorySource`);
//! * **segment_cold** — capacity-0 cache, so every block read hits the
//!   file and re-verifies its checksum (worst case: first touch after a
//!   restart, or a working set far beyond the cache budget).
//!
//! Measured for both access kinds: full sorted streaming through the
//! cursor layer (batch = 1024) and scattered random access. Results also
//! land in `target/bench_storage.json` (shim JSON output) so CI's
//! perf-smoke job can archive the trajectory.
//!
//! Segments come from the default writer, so this tracks the *current*
//! default format (v2 — compressed blocks — as of the format-v2 PR);
//! `bench_compress` is the head-to-head v1-vs-v2 comparison.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use garlic_core::access::GradedSource;
use garlic_core::GradedEntry;
use garlic_storage::{BlockCache, SegmentSource, SegmentWriter};
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

const N: usize = 100_000;
const BATCH: usize = 1024;
const PROBES: usize = 4096;

/// Full sorted stream through the batched cursor path.
fn stream_all<S: GradedSource>(source: &S, buf: &mut Vec<GradedEntry>) -> usize {
    buf.clear();
    let mut rank = 0;
    loop {
        let got = source.sorted_batch(rank, BATCH, buf);
        if got == 0 {
            return rank;
        }
        rank += got;
    }
}

/// Scattered random access over a fixed probe sequence.
fn probe_all<S: GradedSource>(source: &S, probes: &[u64]) -> u64 {
    let mut hits = 0;
    for &p in probes {
        if source.random_access(garlic_core::ObjectId(p)).is_some() {
            hits += 1;
        }
    }
    hits
}

fn bench_storage(c: &mut Criterion) {
    let mut rng = garlic_workload::seeded_rng(9405);
    let skeleton = Skeleton::random(1, N, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    let memory = db.to_sources().pop().expect("one list");

    let dir = std::env::temp_dir().join(format!("garlic-bench-storage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.seg");
    SegmentWriter::new()
        .write_graded_set(&path, memory.graded_set())
        .unwrap();

    // Warm: budget comfortably above the ~2 × 391 blocks of both regions.
    let warm_cache = Arc::new(BlockCache::new(1024));
    let warm = SegmentSource::open(&path, Arc::clone(&warm_cache)).unwrap();
    // Cold: zero residency — every block request reads and re-verifies.
    let cold = SegmentSource::open(&path, Arc::new(BlockCache::new(0))).unwrap();

    // Equivalence gate before timing anything: all three backends must
    // stream the identical ranking and answer identical probes.
    let mut a = Vec::new();
    let mut b = Vec::new();
    assert_eq!(stream_all(&memory, &mut a), N);
    assert_eq!(stream_all(&warm, &mut b), N);
    assert_eq!(a, b, "warm segment streams the memory ranking");
    b.clear();
    assert_eq!(stream_all(&cold, &mut b), N);
    assert_eq!(a, b, "cold segment streams the memory ranking");
    let probes: Vec<u64> = (0..PROBES as u64)
        .map(|i| (i * 24421) % (N as u64 + 7))
        .collect();
    assert_eq!(probe_all(&memory, &probes), probe_all(&warm, &probes));
    assert_eq!(probe_all(&memory, &probes), probe_all(&cold, &probes));

    let mut group = c.benchmark_group(format!("storage_stream/N{N}_batch{BATCH}"));
    let mut buf = Vec::with_capacity(N);
    group.bench_function("memory", |bench| {
        bench.iter(|| black_box(stream_all(&memory, &mut buf)))
    });
    group.bench_function("segment_warm", |bench| {
        bench.iter(|| black_box(stream_all(&warm, &mut buf)))
    });
    group.bench_function("segment_cold", |bench| {
        bench.iter(|| black_box(stream_all(&cold, &mut buf)))
    });
    group.finish();

    let mut group = c.benchmark_group(format!("storage_random/N{N}_probes{PROBES}"));
    group.bench_function("memory", |bench| {
        bench.iter(|| black_box(probe_all(&memory, &probes)))
    });
    group.bench_function("segment_warm", |bench| {
        bench.iter(|| black_box(probe_all(&warm, &probes)))
    });
    group.bench_function("segment_cold", |bench| {
        bench.iter(|| black_box(probe_all(&cold, &probes)))
    });
    group.finish();

    let stats = warm_cache.stats();
    eprintln!(
        "warm cache after timing: {stats} ({:.1}% lifetime hit rate)",
        100.0 * stats.hit_rate()
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).json_path(
        // Bench executables run with the *package* root as cwd; anchor the
        // report in the workspace target dir regardless.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench_storage.json")
    );
    targets = bench_storage
);
criterion_main!(benches);
