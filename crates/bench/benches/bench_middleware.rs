//! End-to-end middleware benchmarks: plan + execute through the full Garlic
//! stack, per planner strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use garlic_middleware::{Catalog, Garlic, GarlicQuery};
use garlic_subsys::{QbicStore, RelationalStore, Target, Value};
use std::hint::black_box;

fn stores(n: usize) -> (RelationalStore, QbicStore) {
    let mut rng = garlic_workload::seeded_rng(21);
    let qbic = QbicStore::synthetic("qbic", n, &mut rng);
    let mut rel = RelationalStore::new("rel", &["Artist"]);
    let artists = ["Beatles", "Kinks", "Who", "Zombies", "Byrds"];
    for i in 0..n as u64 {
        // 1-in-50 rows are Beatles: a selective crisp predicate.
        let artist = if i % 50 == 0 {
            "Beatles"
        } else {
            artists[1 + (i % 4) as usize]
        };
        rel.insert(vec![Value::text(artist)]);
    }
    (rel, qbic)
}

fn bench_strategies(c: &mut Criterion) {
    let n = 5_000;
    let (rel, qbic) = stores(n);
    let mut catalog = Catalog::new();
    catalog.register(rel.clone()).unwrap();
    catalog.register(qbic.clone()).unwrap();
    let garlic = Garlic::new(catalog);

    let filtered = GarlicQuery::and(
        GarlicQuery::atom("Artist", Target::text("Beatles")),
        GarlicQuery::atom("Color", Target::text("red")),
    );
    let conjunction = GarlicQuery::and(
        GarlicQuery::atom("Color", Target::text("red")),
        GarlicQuery::atom("Shape", Target::text("round")),
    );
    let disjunction = GarlicQuery::or(
        GarlicQuery::atom("Color", Target::text("red")),
        GarlicQuery::atom("Color", Target::text("blue")),
    );
    let nested = GarlicQuery::and(
        GarlicQuery::atom("Color", Target::text("red")),
        GarlicQuery::or(
            GarlicQuery::atom("Shape", Target::text("round")),
            GarlicQuery::atom("Color", Target::text("pink")),
        ),
    );

    let mut group = c.benchmark_group("middleware_topk_5k");
    group.bench_function("filtered_beatles", |b| {
        b.iter(|| black_box(garlic.top_k(black_box(&filtered), 10).unwrap()))
    });
    group.bench_function("fa_min_conjunction", |b| {
        b.iter(|| black_box(garlic.top_k(black_box(&conjunction), 10).unwrap()))
    });
    group.bench_function("b0_disjunction", |b| {
        b.iter(|| black_box(garlic.top_k(black_box(&disjunction), 10).unwrap()))
    });
    group.bench_function("fa_generic_nested", |b| {
        b.iter(|| black_box(garlic.top_k(black_box(&nested), 10).unwrap()))
    });
    group.bench_function("plan_only", |b| {
        b.iter(|| black_box(garlic.plan_for(black_box(&conjunction), 10).unwrap()))
    });
    group.bench_function("explain_traced", |b| {
        b.iter(|| black_box(garlic.explain(black_box(&conjunction), 10).unwrap().stats))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_strategies
}
criterion_main!(benches);
