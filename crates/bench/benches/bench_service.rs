//! The headline benchmark of the ownership redesign: multi-threaded query
//! throughput through `GarlicService` vs the single-thread baseline, over
//! one shared catalog at N = 100k.
//!
//! The workload is a batch of independent queries mixing the planner's
//! strategies — A₀′ conjunctions, B₀ disjunctions, generic A₀ compounds,
//! and naive-calculus negations (the heavy, Θ(m·N) tail every real mix
//! has). The single-thread side runs the identical batch on one worker
//! (`GarlicService::with_threads(.., 1)` degenerates to sequential
//! execution), so the measured difference is exactly the scoped-thread
//! fan-out.
//!
//! Results also land in `target/bench_service.json` (shim JSON output) so
//! CI's perf-smoke job can archive the throughput trajectory, and the
//! whole run executes with a telemetry registry attached: the final
//! [`TelemetrySnapshot`](garlic_middleware::TelemetrySnapshot) — service
//! latency quantiles, query counts, queue depth — is dumped to
//! `target/telemetry_snapshot.json` for CI to archive alongside.

use std::sync::{Arc, OnceLock};

use criterion::{black_box, criterion_group, Criterion};
use garlic_middleware::{Catalog, Garlic, GarlicQuery, GarlicService, QueryRequest, Telemetry};
use garlic_subsys::{Target, VectorSubsystem};
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

const N: usize = 100_000;
const M: usize = 3;

/// The registry the whole run records into, stashed for `main` to dump.
static TELEMETRY: OnceLock<Arc<Telemetry>> = OnceLock::new();

/// One shared middleware over M independently graded N-object lists,
/// wired to the run-wide registry.
fn build_garlic() -> Garlic {
    let mut rng = garlic_workload::seeded_rng(9404);
    let skeleton = Skeleton::random(M, N, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    let mut subsystem = VectorSubsystem::new("vectors", N);
    for (attr, source) in ["A", "B", "C"].into_iter().zip(db.to_sources()) {
        subsystem = subsystem.with_source(attr, source);
    }
    let mut catalog = Catalog::new();
    catalog.register(subsystem).unwrap();
    let telemetry = Arc::clone(TELEMETRY.get_or_init(Telemetry::new));
    Garlic::new(catalog).with_telemetry(telemetry)
}

/// A 16-query batch across the strategy catalogue.
fn requests() -> Vec<QueryRequest> {
    let atom = |a: &str| GarlicQuery::atom(a, Target::text("t"));
    let mut out: Vec<QueryRequest> = Vec::new();
    for i in 0..4 {
        // Heavy: naive calculus scans m·N entries regardless of k.
        out.push((
            GarlicQuery::and(atom(["A", "B", "C"][i % 3]), GarlicQuery::not(atom("B"))),
            10,
        ));
        // A₀′ conjunction at a paging-sized k.
        out.push((GarlicQuery::and(atom("A"), atom("B")), 100 + 50 * i));
        // B₀ disjunction: m·k sorted accesses.
        out.push((GarlicQuery::or(atom("A"), atom("C")), 2000));
        // Generic A₀ compound.
        out.push((
            GarlicQuery::and(atom("C"), GarlicQuery::or(atom("A"), atom("B"))),
            50 + 25 * i,
        ));
    }
    out
}

fn bench_service_throughput(c: &mut Criterion) {
    let garlic = build_garlic();
    let reqs = requests();
    // Worker count: `GARLIC_SERVICE_THREADS` override, else all cores (at
    // least 2, so the concurrent path is exercised even on starved CI
    // boxes — on a single hardware thread the two sides then measure the
    // fan-out overhead itself, which should be negligible).
    let threads = std::env::var("GARLIC_SERVICE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .max(2)
        });

    let single = GarlicService::with_threads(garlic.clone(), 1);
    let multi = GarlicService::with_threads(garlic, threads);

    // The two modes must agree before we time them.
    for (s, m) in single
        .top_k_batch(&reqs)
        .iter()
        .zip(multi.top_k_batch(&reqs))
    {
        let (s, m) = (s.as_ref().unwrap(), m.as_ref().unwrap());
        assert_eq!(s.answers.entries(), m.answers.entries());
        assert_eq!(s.stats, m.stats);
    }

    let mut group = c.benchmark_group(format!("service_batch/N{N}_m{M}_q{}", reqs.len()));

    group.bench_function("single_thread", |b| {
        b.iter(|| black_box(single.top_k_batch(&reqs)))
    });

    group.bench_function(format!("threads_{threads}"), |b| {
        b.iter(|| black_box(multi.top_k_batch(&reqs)))
    });

    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).json_path(
        // Bench executables run with the *package* root as cwd; anchor the
        // report in the workspace target dir regardless.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench_service.json")
    );
    targets = bench_service_throughput
);

const SNAPSHOT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../target/telemetry_snapshot.json"
);

fn main() {
    benches();
    // Dump the run's accumulated registry — service latency quantiles,
    // query counts, final queue depth — for CI's perf-smoke artifact.
    if let Some(telemetry) = TELEMETRY.get() {
        let snap = telemetry.snapshot();
        if std::fs::write(SNAPSHOT_PATH, snap.to_json()).is_ok() {
            eprintln!(
                "bench_service: {} service queries metered \u{2192} {SNAPSHOT_PATH}",
                snap.counter("service.queries")
            );
        }
    }
}
