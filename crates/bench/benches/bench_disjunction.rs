//! B₀ vs the naive scan for disjunctions: B₀'s wall time should be flat in
//! N (it touches mk entries), the naive scan linear (Theorem 4.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garlic_agg::iterated::max_agg;
use garlic_core::access::MemorySource;
use garlic_core::algorithms::b0_max::b0_max_topk;
use garlic_core::algorithms::naive::naive_topk;
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;
use std::hint::black_box;

fn workload(m: usize, n: usize, seed: u64) -> Vec<MemorySource> {
    let mut rng = garlic_workload::seeded_rng(seed);
    let skeleton = Skeleton::random(m, n, &mut rng);
    ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng).to_sources()
}

fn bench_disjunction(c: &mut Criterion) {
    let k = 10;
    let mut group = c.benchmark_group("disjunction_topk");
    for n in [1_000usize, 8_000, 64_000] {
        let sources = workload(3, n, 3);
        group.bench_with_input(BenchmarkId::new("b0", n), &n, |b, _| {
            b.iter(|| black_box(b0_max_topk(&sources, k).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive_topk(&sources, &max_agg(), k).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_disjunction
}
criterion_main!(benches);
