//! # garlic-bench — the experiment harness
//!
//! One binary per quantitative claim in the paper (see `EXPERIMENTS.md` at
//! the workspace root for the claim ↔ binary index); this library holds the
//! shared measurement plumbing.
//!
//! Run any experiment with
//! `cargo run --release -p garlic-bench --bin exp01_cost_vs_n`.
//! Each accepts an optional trial-count argument and `--csv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use garlic_agg::Aggregation;
use garlic_core::access::{counted, total_stats, CountingSource, MemorySource};
use garlic_core::algorithms::fa::{fagin_run, FaOptions, FaRun};
use garlic_core::AccessStats;
use garlic_workload::distributions::{GradeDistribution, UniformGrades};
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

/// Everything measured in one algorithm trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Access counts across all lists.
    pub stats: AccessStats,
    /// A₀'s uniform stop depth `T` (0 when not applicable).
    pub depth: usize,
}

/// Builds an independent-lists workload: random skeleton, grades from the
/// given distribution, counted sources.
pub fn independent_workload(
    m: usize,
    n: usize,
    dist: &dyn GradeDistribution,
    seed: u64,
) -> Vec<CountingSource<MemorySource>> {
    let mut rng = garlic_workload::seeded_rng(seed);
    let skeleton = Skeleton::random(m, n, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, dist, &mut rng);
    counted(db.to_sources())
}

/// Runs one A₀ trial on an independent uniform workload.
pub fn fa_trial<A: Aggregation>(m: usize, n: usize, k: usize, agg: &A, seed: u64) -> Trial {
    let sources = independent_workload(m, n, &UniformGrades, seed);
    let run: FaRun =
        fagin_run(&sources, agg, k, FaOptions::default()).expect("valid trial parameters");
    Trial {
        stats: total_stats(&sources),
        depth: run.stop_depth,
    }
}

/// Mean unweighted middleware cost of A₀ over `trials` seeds.
pub fn fa_mean_cost<A: Aggregation>(
    m: usize,
    n: usize,
    k: usize,
    agg: &A,
    trials: usize,
    seed0: u64,
) -> f64 {
    let total: u64 = (0..trials)
        .map(|t| fa_trial(m, n, k, agg, seed0 + t as u64).stats.unweighted())
        .sum();
    total as f64 / trials as f64
}

/// Parses the common experiment CLI:
/// `[trials] [--csv] [--json] [--small]`.
pub struct ExpArgs {
    /// Number of trials per configuration.
    pub trials: usize,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Emit machine-readable JSON instead of an aligned table (for CI
    /// artifact archiving; wins over `--csv`).
    pub json: bool,
    /// Run a reduced-size configuration (perf-smoke mode for CI).
    pub small: bool,
}

impl ExpArgs {
    /// Parses `std::env::args`, with a default trial count.
    pub fn parse(default_trials: usize) -> ExpArgs {
        Self::from_iter(default_trials, std::env::args().skip(1))
    }

    /// [`ExpArgs::parse`] over an explicit argument list (testable).
    pub fn from_iter(default_trials: usize, args: impl IntoIterator<Item = String>) -> ExpArgs {
        let mut parsed = ExpArgs {
            trials: default_trials,
            csv: false,
            json: false,
            small: false,
        };
        for arg in args {
            match arg.as_str() {
                "--csv" => parsed.csv = true,
                "--json" => parsed.json = true,
                "--small" => parsed.small = true,
                other => {
                    if let Ok(t) = other.parse::<usize>() {
                        parsed.trials = t.max(1);
                    }
                }
            }
        }
        parsed
    }
}

pub mod report;

/// Prints an experiment header then the table (or CSV / JSON).
pub fn emit(id: &str, claim: &str, args: &ExpArgs, table: &garlic_stats::Table, notes: &[&str]) {
    if args.json {
        print!("{}", table.to_json());
        return;
    }
    if args.csv {
        print!("{}", table.to_csv());
        return;
    }
    println!("== {id} ==");
    println!("paper claim: {claim}");
    println!("trials per row: {}", args.trials);
    println!();
    print!("{}", table.render());
    for note in notes {
        println!("note: {note}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garlic_agg::iterated::min_agg;

    #[test]
    fn fa_trial_runs_and_counts() {
        let t = fa_trial(2, 200, 5, &min_agg(), 1);
        assert!(t.stats.sorted > 0);
        assert!(t.depth >= 1 && t.depth <= 200);
        // Sorted cost is exactly m * depth for round-robin A0.
        assert_eq!(t.stats.sorted, 2 * t.depth as u64);
    }

    #[test]
    fn mean_cost_is_positive_and_sublinear_at_scale() {
        let mean = fa_mean_cost(2, 400, 1, &min_agg(), 5, 10);
        assert!(mean > 0.0);
        assert!(mean < 2.0 * 400.0, "cost should be well below m*N");
    }

    #[test]
    fn workload_is_reproducible() {
        let a = fa_trial(2, 100, 1, &min_agg(), 42);
        let b = fa_trial(2, 100, 1, &min_agg(), 42);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn exp_args_parse_flags_and_trials() {
        let args = ExpArgs::from_iter(5, ["3", "--json", "--small"].map(str::to_owned));
        assert_eq!(args.trials, 3);
        assert!(args.json);
        assert!(args.small);
        assert!(!args.csv);
        let defaults = ExpArgs::from_iter(5, std::iter::empty());
        assert_eq!(defaults.trials, 5);
        assert!(!defaults.json && !defaults.small && !defaults.csv);
    }
}
