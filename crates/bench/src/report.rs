//! Shared plumbing for post-processing the criterion shim's flat JSON
//! reports (`target/bench_*.json`).
//!
//! Several benches graft measured metrics into the report the shim just
//! flushed: dimensionless ratios become `metric_benchmarks`
//! pseudo-entries (addressable by `perf_gate --pair`, whose parser scans
//! `name`/`median_ns` pairs wherever they appear) and human-oriented
//! summary objects ride along as extra top-level members. This module is
//! the one implementation of that read–splice–write cycle.

/// Pulls one benchmark's `median_ns` out of a shim report.
pub fn median_of(json: &str, name: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{name}\""))?;
    let rest = &json[at..];
    let med = rest.find("\"median_ns\":")?;
    let rest = &rest[med + "\"median_ns\":".len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Renders a `metric_benchmarks` member from `(name, value)` pairs: a
/// list of pseudo-benchmarks whose `median_ns` carries the measured
/// value, so `perf_gate --pair` can gate dimensionless ratios by name.
pub fn metric_benchmarks(entries: &[(&str, f64)]) -> String {
    let pseudo: Vec<String> = entries
        .iter()
        .map(|(name, value)| format!("{{\"name\": \"{name}\", \"median_ns\": {value}}}"))
        .collect();
    format!(
        "\"metric_benchmarks\": [\n    {}\n  ]",
        pseudo.join(",\n    ")
    )
}

/// Re-opens the report at `path` and splices `members` — one or more
/// comma-separated top-level JSON members, **without** a leading comma or
/// the closing brace — before the report's final `}`. Returns `false`
/// (without touching the file) when the report is missing or malformed.
pub fn graft_members(path: &str, members: &str) -> bool {
    let Ok(json) = std::fs::read_to_string(path) else {
        return false;
    };
    let Some(close) = json.rfind('}') else {
        return false;
    };
    let patched = format!("{},\n  {members}\n}}", json[..close].trim_end());
    std::fs::write(path, patched).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_scans_flat_reports() {
        let json = r#"{"benchmarks": [
            {"name": "a/x", "median_ns": 120.5, "mean_ns": 130.0},
            {"name": "a/y", "median_ns": 240}
        ]}"#;
        assert_eq!(median_of(json, "a/x"), Some(120.5));
        assert_eq!(median_of(json, "a/y"), Some(240.0));
        assert_eq!(median_of(json, "a/z"), None);
    }

    #[test]
    fn metric_benchmarks_entries_are_gateable() {
        let block = metric_benchmarks(&[("metric_r/a", 1.5), ("metric_r/b", 3.0)]);
        assert!(block.starts_with("\"metric_benchmarks\": ["));
        // The rendered pseudo-entries parse back through median_of.
        assert_eq!(median_of(&block, "metric_r/a"), Some(1.5));
        assert_eq!(median_of(&block, "metric_r/b"), Some(3.0));
    }

    #[test]
    fn graft_members_splices_before_the_final_brace() {
        let dir = std::env::temp_dir().join(format!("garlic-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        std::fs::write(&path, "{\"benchmarks\": []\n}\n").unwrap();
        let path = path.to_str().unwrap().to_string();
        assert!(graft_members(&path, "\"extra\": {\"k\": 1}"));
        let patched = std::fs::read_to_string(&path).unwrap();
        assert!(patched.contains("\"benchmarks\": [],\n  \"extra\": {\"k\": 1}\n}"));
        // Balanced braces after the splice.
        assert_eq!(patched.matches('{').count(), patched.matches('}').count());
        assert!(!graft_members(&format!("{path}.missing"), "\"x\": 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
