//! E03 — Theorem 5.3's dependence on the answer count: at fixed N the cost
//! grows as `k^(1/m)` — square root of k for two lists, cube root for three.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, fa_mean_cost, ExpArgs};
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};

fn main() {
    let args = ExpArgs::parse(15);
    let n = 65_536;
    let ks: Vec<usize> = (0..7).map(|i| 1 << (2 * i)).collect(); // 1,4,...,4096

    let mut table = Table::new(&["m", "k", "mean cost", "cost/(N^((m-1)/m) k^(1/m))"]);
    let mut notes_owned = Vec::new();
    for m in [2usize, 3] {
        let mut costs = Vec::new();
        for &k in &ks {
            let mean = fa_mean_cost(m, n, k, &min_agg(), args.trials, 777);
            costs.push(mean);
            let scale = garlic_stats::bounds::cost_scale(n as f64, m, k as f64);
            table.add_row(vec![
                m.to_string(),
                k.to_string(),
                fmt_f64(mean, 1),
                fmt_f64(mean / scale, 3),
            ]);
        }
        let fit = log_log_fit(&ks.iter().map(|&k| k as f64).collect::<Vec<_>>(), &costs);
        notes_owned.push(format!(
            "m = {m}: measured k-exponent {} vs predicted 1/m = {} (R^2 = {})",
            fmt_f64(fit.slope, 3),
            fmt_f64(1.0 / m as f64, 3),
            fmt_f64(fit.r_squared, 4)
        ));
    }

    let notes: Vec<&str> = notes_owned.iter().map(String::as_str).collect();
    emit(
        "E03: A0 cost vs k (N = 65536)",
        "Theorem 5.3: the k-dependence of the cost is k^(1/m)",
        &args,
        &table,
        &notes,
    );
}
