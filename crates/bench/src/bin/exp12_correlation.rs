//! E12 — correlation between the conjuncts (Section 7's discussion): "if
//! the conjuncts are positively correlated, this can only help the
//! efficiency. What if the conjuncts are negatively correlated?" — the cost
//! interpolates from ~k (identical lists) through Θ(√N) (independent) to
//! Θ(N) (reversed, the hard-query regime).

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, ExpArgs};
use garlic_core::access::{counted, total_stats};
use garlic_core::algorithms::fa::fagin_topk;
use garlic_stats::table::fmt_f64;
use garlic_stats::Table;
use garlic_workload::correlation::{latent_database, spearman_rho};

fn main() {
    let args = ExpArgs::parse(15);
    let n = 16_384;
    let k = 10;
    let rhos = [-1.0, -0.75, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(&[
        "target rho",
        "measured rho",
        "mean A0 cost",
        "cost/sqrt(Nk)",
        "cost/N",
    ]);
    for &rho in &rhos {
        let mut cost = 0u64;
        let mut measured = 0.0;
        for t in 0..args.trials {
            let mut rng = garlic_workload::seeded_rng(120_000 + t as u64);
            let db = latent_database(2, n, rho, &mut rng);
            measured += spearman_rho(&db, 0, 1);
            let sources = counted(db.to_sources());
            fagin_topk(&sources, &min_agg(), k).unwrap();
            cost += total_stats(&sources).unweighted();
        }
        let mean = cost as f64 / args.trials as f64;
        table.add_row(vec![
            fmt_f64(rho, 2),
            fmt_f64(measured / args.trials as f64, 3),
            fmt_f64(mean, 0),
            fmt_f64(mean / ((n * k) as f64).sqrt(), 2),
            fmt_f64(mean / n as f64, 3),
        ]);
    }

    emit(
        "E12: correlation sweep (m = 2, N = 16384, k = 10)",
        "Section 7: positive correlation helps, negative hurts; rho = -1 approaches the Θ(N) hard-query regime",
        &args,
        &table,
        &[
            "cost must decrease monotonically in rho",
            "at rho = +1 the cost approaches ~2k (+ random accesses); at rho = -1 it approaches ~2N",
        ],
    );
}
