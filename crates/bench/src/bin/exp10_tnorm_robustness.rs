//! E10 — robustness across aggregation functions (Sections 3, 5, 6): "the
//! matching upper and lower bounds ... hold under almost any reasonable
//! rule (including the standard min rule of fuzzy logic) for evaluating the
//! conjunction."
//!
//! A₀'s access pattern depends only on the skeleton, never on the
//! aggregation, so its cost is *identical* for every monotone aggregation —
//! t-norms and \[TZZ79\] means alike — while the answers always match the
//! naive reference for that same aggregation.

use garlic_agg::iterated::all_iterated_tnorms;
use garlic_agg::means::{ArithmeticMean, GeometricMean};
use garlic_agg::Aggregation;
use garlic_bench::{emit, independent_workload, ExpArgs};
use garlic_core::access::total_stats;
use garlic_core::algorithms::{fa::fagin_topk, naive::naive_topk};
use garlic_stats::table::fmt_f64;
use garlic_stats::Table;
use garlic_workload::distributions::UniformGrades;

fn main() {
    let args = ExpArgs::parse(10);
    let n = 32_768;
    let k = 10;
    let m = 2;

    let mut aggs: Vec<Box<dyn Aggregation>> = all_iterated_tnorms();
    aggs.push(Box::new(ArithmeticMean));
    aggs.push(Box::new(GeometricMean));

    let mut table = Table::new(&[
        "aggregation",
        "mean A0 cost",
        "agrees with naive",
        "cost == min-rule cost",
    ]);
    let mut min_cost: Option<f64> = None;
    for agg in &aggs {
        let mut cost = 0u64;
        let mut agrees = true;
        for t in 0..args.trials {
            let seed = 100_000 + t as u64;
            let sources = independent_workload(m, n, &UniformGrades, seed);
            let fast = fagin_topk(&sources, agg, k).unwrap();
            cost += total_stats(&sources).unweighted();

            let sources = independent_workload(m, n, &UniformGrades, seed);
            let slow = naive_topk(&sources, agg, k).unwrap();
            if !fast.same_grades(&slow, 1e-9) {
                agrees = false;
            }
        }
        let mean = cost as f64 / args.trials as f64;
        let baseline = *min_cost.get_or_insert(mean);
        table.add_row(vec![
            agg.name(),
            fmt_f64(mean, 1),
            agrees.to_string(),
            (mean == baseline).to_string(),
        ]);
    }

    emit(
        "E10: aggregation-function robustness (m = 2, N = 32768, k = 10)",
        "Theorems 5.3/6.4 hold for every monotone (and strict) aggregation; A0's cost is aggregation-independent",
        &args,
        &table,
        &[
            "every aggregation must agree with its naive reference",
            "every row's cost must equal the min rule's cost exactly",
        ],
    );
}
