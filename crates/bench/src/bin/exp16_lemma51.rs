//! E16 — the proof machinery of Lemma 5.1, measured.
//!
//! The lemma's proof chains four coin-flipping processes:
//! `Pr[|B| ≤ M/2] = Pr[P1 ≤ a] = Pr[P2 ≤ a] ≤ Pr[P3 ≤ a] ≤ Pr[P4 ≤ a]
//! < e^{−M/10}` (statements A–E). We sample all four processes plus the
//! direct intersection and print the whole chain — every column should be
//! (weakly) larger than the one to its left, and the last strictly below
//! the bound.

use garlic_bench::{emit, ExpArgs};
use garlic_stats::table::fmt_prob;
use garlic_stats::Table;
use garlic_workload::lemma51::{
    process1_heads, process2_heads, process3_heads, process4_heads, sample_intersection,
    tail_at_most, Lemma51Params,
};

fn main() {
    let args = ExpArgs::parse(20_000);
    // Configurations satisfying the lemma's l1 <= N/10 hypothesis, plus one
    // deliberate violation to show where statement D needs it.
    let configs = [
        Lemma51Params::new(1000, 100, 100), // M = 10, boundary l1 = N/10
        Lemma51Params::new(4000, 400, 200), // M = 20
        Lemma51Params::new(4000, 200, 100), // M = 5
        Lemma51Params::new(400, 80, 80),    // M = 16 — VIOLATES l1 <= N/10
    ];

    let mut table = Table::new(&[
        "N",
        "l1",
        "l2",
        "M",
        "hyp ok",
        "direct",
        "P1",
        "P2",
        "P3",
        "P4",
        "e^(-M/10)",
    ]);
    for (i, &p) in configs.iter().enumerate() {
        let seed = 160_000 + 10 * i as u64;
        table.add_row(vec![
            p.n.to_string(),
            p.l1.to_string(),
            p.l2.to_string(),
            format!("{}", p.expected_intersection()),
            p.satisfies_hypothesis().to_string(),
            fmt_prob(tail_at_most(sample_intersection, p, args.trials, seed)),
            fmt_prob(tail_at_most(process1_heads, p, args.trials, seed + 1)),
            fmt_prob(tail_at_most(process2_heads, p, args.trials, seed + 2)),
            fmt_prob(tail_at_most(process3_heads, p, args.trials, seed + 3)),
            fmt_prob(tail_at_most(process4_heads, p, args.trials, seed + 4)),
            fmt_prob(p.bound()),
        ]);
    }

    emit(
        "E16: Lemma 5.1's domination chain",
        "Pr[|B| <= M/2] = P1 = P2 <= P3 <= P4 < e^(-M/10) (statements A-E of the proof)",
        &args,
        &table,
        &[
            "where the l1 <= N/10 hypothesis holds, each probability column weakly dominates the one to its left",
            "the final bound column must strictly dominate everything in hypothesis-satisfying rows",
            "the last row violates the hypothesis: statement D's P3 <= P4 ordering can flip there (the lemma needs its hypothesis!)",
        ],
    );
}
