//! E05 — the matching lower bound (Theorems 6.4–6.6).
//!
//! Lemma 6.2: any correct algorithm for a *strict* query that spends less
//! than `N` total accesses must drive its sorted depth `T` to the point
//! where `|∩ᵢ X^i_T| ≥ k`. That depth, `T*`, is a property of the skeleton
//! alone — so we measure its distribution directly and check:
//!
//! 1. A₀ stops exactly at `T*` (it is depth-optimal, not just
//!    order-optimal);
//! 2. Theorem 6.4's anti-concentration: `Pr[T* ≤ θ·N^((m−1)/m)k^(1/m)]
//!    ≤ θ^m` — no algorithm is likely to get away with a small constant.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, ExpArgs};
use garlic_core::access::{counted, total_stats};
use garlic_core::algorithms::fa::{fagin_run, FaOptions};
use garlic_stats::bounds::cost_scale;
use garlic_stats::table::{fmt_f64, fmt_prob};
use garlic_stats::{exceedance, Table};
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

fn main() {
    let args = ExpArgs::parse(500);
    let n = 10_000;
    let k = 1;
    let thetas = [0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(&[
        "m",
        "theta",
        "empirical P[T* <= theta*scale]",
        "Theorem 6.4 bound theta^m",
    ]);
    let mut notes_owned = Vec::new();
    for m in [2usize, 3] {
        let mut t_stars = Vec::with_capacity(args.trials);
        let mut a0_matches_tstar = true;
        for t in 0..args.trials {
            let mut rng = garlic_workload::seeded_rng(50_000 + t as u64);
            let skeleton = Skeleton::random(m, n, &mut rng);
            let t_star = skeleton.matching_depth(k);
            t_stars.push(t_star as f64);

            // Spot-check A0 depth-optimality on a subsample.
            if t % 50 == 0 {
                let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
                let sources = counted(db.to_sources());
                let run = fagin_run(&sources, &min_agg(), k, FaOptions::default()).unwrap();
                if run.stop_depth != t_star {
                    a0_matches_tstar = false;
                }
                let _ = total_stats(&sources);
            }
        }
        let scale = cost_scale(n as f64, m, k as f64);
        for &theta in &thetas {
            // P[T* <= theta*scale] = 1 - P[T* > theta*scale].
            let p = 1.0 - exceedance(&t_stars, theta * scale);
            table.add_row(vec![
                m.to_string(),
                fmt_f64(theta, 2),
                fmt_prob(p),
                fmt_prob(theta.powi(m as i32)),
            ]);
        }
        notes_owned.push(format!(
            "m = {m}: A0 stop depth == T* on every sampled skeleton: {a0_matches_tstar}"
        ));
        notes_owned.push(format!(
            "m = {m}: mean T* = {} vs scale N^((m-1)/m)k^(1/m) = {} (ratio {})",
            fmt_f64(t_stars.iter().sum::<f64>() / t_stars.len() as f64, 1),
            fmt_f64(scale, 1),
            fmt_f64(
                t_stars.iter().sum::<f64>() / t_stars.len() as f64 / scale,
                3
            ),
        ));
    }

    let notes: Vec<&str> = notes_owned.iter().map(String::as_str).collect();
    emit(
        "E05: the lower-bound depth T* (N = 10000, k = 1)",
        "Theorem 6.4: P[cost <= min(c1,c2)*theta*N^((m-1)/m)k^(1/m)] <= theta^m for strict queries",
        &args,
        &table,
        &notes,
    );
}
