//! E06 — the provably hard query `Q ∧ ¬Q` (Theorem 7.1): its middleware
//! cost is Θ(N); the naive linear algorithm is essentially optimal.
//!
//! We generate the exact Section 7 instance (list 2 the reverse of list 1,
//! grades complementary and pairwise distinct) and run A₀ on it. The
//! intersection of prefixes stays empty until depth ≈ N/2, so A₀'s cost —
//! like every correct algorithm's — grows linearly, in stark contrast to
//! the √N of independent lists (E01).

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, ExpArgs};
use garlic_core::access::{counted, total_stats};
use garlic_core::algorithms::{fa::fagin_run, fa::FaOptions, naive::naive_topk};
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};
use garlic_workload::correlation::hard_query_database;

fn main() {
    let args = ExpArgs::parse(10);
    let ns: Vec<usize> = (0..6).map(|i| 1000 << i).collect(); // 1k .. 32k
    let k = 1;

    let mut table = Table::new(&["N", "A0 cost", "naive cost", "A0/naive", "A0 cost/N"]);
    let mut a0_costs = Vec::new();
    for &n in &ns {
        let mut a0_total = 0u64;
        let mut naive_total = 0u64;
        for t in 0..args.trials {
            let mut rng = garlic_workload::seeded_rng(60_000 + t as u64);
            let db = hard_query_database(n, &mut rng);

            let sources = counted(db.to_sources());
            fagin_run(&sources, &min_agg(), k, FaOptions::default()).unwrap();
            a0_total += total_stats(&sources).unweighted();

            let sources = counted(db.to_sources());
            naive_topk(&sources, &min_agg(), k).unwrap();
            naive_total += total_stats(&sources).unweighted();
        }
        let a0 = a0_total as f64 / args.trials as f64;
        let naive = naive_total as f64 / args.trials as f64;
        a0_costs.push(a0);
        table.add_row(vec![
            n.to_string(),
            fmt_f64(a0, 0),
            fmt_f64(naive, 0),
            fmt_f64(a0 / naive, 3),
            fmt_f64(a0 / n as f64, 3),
        ]);
    }

    let fit = log_log_fit(&ns.iter().map(|&n| n as f64).collect::<Vec<_>>(), &a0_costs);
    let note = format!(
        "measured exponent {} (Theorem 7.1 predicts 1.0 — linear); compare 0.5 on independent lists (E01)",
        fmt_f64(fit.slope, 3)
    );
    emit(
        "E06: the hard query Q AND NOT Q",
        "Theorem 7.1: middleware cost Θ(N); the naive algorithm is optimal up to a constant",
        &args,
        &table,
        &[&note],
    );
}
