//! E01 — Theorem 5.3 / 5.4: with m = 2 independent lists, algorithm A₀'s
//! middleware cost grows as Θ(√(N·k)); in particular Θ(√N) for constant k.
//!
//! Measures mean unweighted cost over an N sweep for several k, prints the
//! ratio to √(Nk) (should be roughly constant down the column), and fits
//! the log-log exponent (should approach 0.5).

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, fa_mean_cost, ExpArgs};
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};

fn main() {
    let args = ExpArgs::parse(20);
    let ns: Vec<usize> = (0..8).map(|i| 1000 << i).collect(); // 1k .. 128k
    let ks = [1usize, 10, 100];
    let m = 2;

    let mut table = Table::new(&["k", "N", "mean cost", "cost/sqrt(Nk)"]);
    let mut fits = Vec::new();
    for &k in &ks {
        let mut costs = Vec::new();
        for &n in &ns {
            let mean = fa_mean_cost(m, n, k, &min_agg(), args.trials, 1996);
            costs.push(mean);
            let scale = ((n * k) as f64).sqrt();
            table.add_row(vec![
                k.to_string(),
                n.to_string(),
                fmt_f64(mean, 1),
                fmt_f64(mean / scale, 3),
            ]);
        }
        let fit = log_log_fit(&ns.iter().map(|&n| n as f64).collect::<Vec<_>>(), &costs);
        fits.push(format!(
            "k = {k}: measured exponent {} (paper predicts (m-1)/m = 0.5), R^2 = {}",
            fmt_f64(fit.slope, 3),
            fmt_f64(fit.r_squared, 4)
        ));
    }

    let notes: Vec<&str> = fits.iter().map(String::as_str).collect();
    emit(
        "E01: A0 cost vs N (m = 2)",
        "Theorem 5.3: middleware cost O(N^((m-1)/m) k^(1/m)) whp; m = 2 gives Θ(√(Nk))",
        &args,
        &table,
        &notes,
    );
}
