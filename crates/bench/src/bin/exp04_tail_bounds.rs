//! E04 — the tail of A₀'s sorted depth (Lemma 5.1's Chernoff machinery and
//! Wimmers' refined m = 2 analysis).
//!
//! The paper: "the probability is less than 2·10⁻⁸ that more than 2√(Nk)
//! objects are accessed by sorted access in each list, and less than
//! 4·10⁻²⁷ \[for\] 3√(Nk)", with dominant term `e^{−c²k}`. We measure the
//! empirical exceedance of the per-list sorted depth over `c·√(Nk)` and
//! print it next to the dominant-term curve — the empirical tail should
//! decay at least as fast.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, fa_trial, ExpArgs};
use garlic_stats::bounds::{wimmers_depth_threshold, wimmers_dominant_tail};
use garlic_stats::table::{fmt_f64, fmt_prob};
use garlic_stats::{exceedance, wilson_interval, Table};

fn main() {
    let args = ExpArgs::parse(2000);
    let n = 10_000;
    let m = 2;
    let cs = [0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

    let mut table = Table::new(&[
        "k",
        "c",
        "threshold c*sqrt(Nk)",
        "empirical P[T > thr]",
        "95% Wilson upper",
        "e^(-c^2 k) (dominant term)",
    ]);
    for &k in &[1usize, 10] {
        let depths: Vec<f64> = (0..args.trials)
            .map(|t| fa_trial(m, n, k, &min_agg(), 31_000 + t as u64).depth as f64)
            .collect();
        for &c in &cs {
            let thr = wimmers_depth_threshold(c, n as f64, k as f64);
            let p = exceedance(&depths, thr);
            let hits = (p * args.trials as f64).round() as usize;
            let (_, upper) = wilson_interval(hits, args.trials, 1.96);
            table.add_row(vec![
                k.to_string(),
                fmt_f64(c, 2),
                fmt_f64(thr, 0),
                fmt_prob(p),
                fmt_prob(upper),
                fmt_prob(wimmers_dominant_tail(c, k as f64)),
            ]);
        }
    }

    emit(
        "E04: sorted-depth tail vs the Wimmers bound (m = 2, N = 10000)",
        "P[depth > c*sqrt(Nk)] decays like e^(-c^2 k); < 2e-8 at c = 2, < 4e-27 at c = 3 (full bound)",
        &args,
        &table,
        &[
            "the empirical tail should sit at or below the dominant-term curve",
            "at c >= 2 no exceedance should be observable at these trial counts",
        ],
    );
}
