//! E17 (integration) — the full Garlic stack at scale: parsed text queries
//! planned and executed through catalog → planner → subsystem, verifying
//! that the end-to-end middleware cost keeps the Theorem 5.3 shape that
//! E01 measured for the bare algorithm, and that each query shape lands on
//! its intended strategy.

use garlic_bench::{emit, ExpArgs};
use garlic_middleware::{parse_query, Catalog, Garlic};
use garlic_stats::bounds::cost_scale;
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};
use garlic_subsys::QbicStore;

fn main() {
    let args = ExpArgs::parse(5);
    // `--small` is the CI perf-smoke configuration: the same pipeline at
    // 1k..4k so the job finishes in seconds while still fitting a slope.
    let points = if args.small { 3 } else { 6 };
    let ns: Vec<usize> = (0..points).map(|i| 1000 << i).collect(); // 1k ..
    let k = 10;

    let queries = [
        ("conjunction (A0')", "Color = red AND Texture = striped"),
        ("disjunction (B0)", "Color = red OR Color = blue"),
        (
            "nested positive (A0)",
            "Color = red AND (Shape = round OR Texture = smooth)",
        ),
    ];

    let mut table = Table::new(&["query", "N", "strategy", "mean cost", "cost/scale"]);
    let mut notes_owned = Vec::new();
    for (label, text) in queries {
        let query = parse_query(text).expect("example queries parse");
        let m = query.atoms().len();
        let mut costs = Vec::new();
        for &n in &ns {
            let mut total = 0u64;
            let mut strategy = String::new();
            for t in 0..args.trials {
                let mut rng = garlic_workload::seeded_rng(170_000 + t as u64);
                let store = QbicStore::synthetic("qbic", n, &mut rng);
                let mut catalog = Catalog::new();
                catalog.register(store).unwrap();
                let garlic = Garlic::new(catalog);
                let result = garlic.top_k(&query, k).unwrap();
                total += result.stats.unweighted();
                strategy = format!("{:?}", result.plan.strategy);
            }
            let mean = total as f64 / args.trials as f64;
            costs.push(mean);
            let scale = cost_scale(n as f64, m, k as f64);
            table.add_row(vec![
                label.to_owned(),
                n.to_string(),
                strategy,
                fmt_f64(mean, 0),
                fmt_f64(mean / scale, 3),
            ]);
        }
        let fit = log_log_fit(&ns.iter().map(|&n| n as f64).collect::<Vec<_>>(), &costs);
        notes_owned.push(format!(
            "{label}: end-to-end cost exponent {}",
            fmt_f64(fit.slope, 3)
        ));
    }

    let notes: Vec<&str> = notes_owned.iter().map(String::as_str).collect();
    emit(
        "E17: full middleware stack scaling (k = 10)",
        "integration: parsed queries through catalog/planner/executor keep the Theorem 5.3 cost shape; B0 queries stay flat",
        &args,
        &table,
        &notes,
    );
}
