//! E11 — the constant-factor refinements of Section 4: per-list depth
//! shrinking ("find Tᵢ ≤ T ... which could lead to fewer random accesses")
//! and algorithm A₀′ (Proposition 4.3: random access only for the pivot
//! list's candidates).
//!
//! All three variants share an identical sorted phase; the random-access
//! column is where they separate.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, independent_workload, ExpArgs};
use garlic_core::access::total_stats;
use garlic_core::algorithms::fa::{fagin_run, FaOptions};
use garlic_core::algorithms::fa_min::fagin_min_run;
use garlic_stats::table::fmt_f64;
use garlic_stats::Table;
use garlic_workload::distributions::UniformGrades;

fn main() {
    let args = ExpArgs::parse(20);
    let n = 32_768;
    let k = 10;

    let mut table = Table::new(&["m", "variant", "sorted", "random", "total", "vs A0"]);
    for m in [2usize, 3, 4] {
        let mut rows = [(0u64, 0u64); 3]; // (sorted, random) per variant
        for t in 0..args.trials {
            let seed = 110_000 + t as u64;

            let sources = independent_workload(m, n, &UniformGrades, seed);
            fagin_run(&sources, &min_agg(), k, FaOptions::default()).unwrap();
            let s = total_stats(&sources);
            rows[0].0 += s.sorted;
            rows[0].1 += s.random;

            let sources = independent_workload(m, n, &UniformGrades, seed);
            fagin_run(
                &sources,
                &min_agg(),
                k,
                FaOptions {
                    shrink_depths: true,
                },
            )
            .unwrap();
            let s = total_stats(&sources);
            rows[1].0 += s.sorted;
            rows[1].1 += s.random;

            let sources = independent_workload(m, n, &UniformGrades, seed);
            fagin_min_run(&sources, k).unwrap();
            let s = total_stats(&sources);
            rows[2].0 += s.sorted;
            rows[2].1 += s.random;
        }
        let names = ["A0", "A0 + shrink Ti", "A0' (min)"];
        let base_total = (rows[0].0 + rows[0].1) as f64 / args.trials as f64;
        for (i, name) in names.iter().enumerate() {
            let sorted = rows[i].0 as f64 / args.trials as f64;
            let random = rows[i].1 as f64 / args.trials as f64;
            table.add_row(vec![
                m.to_string(),
                (*name).to_owned(),
                fmt_f64(sorted, 1),
                fmt_f64(random, 1),
                fmt_f64(sorted + random, 1),
                format!("{}x", fmt_f64((sorted + random) / base_total, 3)),
            ]);
        }
    }

    emit(
        "E11: A0 refinements (N = 32768, k = 10)",
        "Section 4: per-list Ti and the A0' candidate set cut random accesses by constant factors; sorted cost is shared",
        &args,
        &table,
        &["all variants return identical answer grades (asserted by the test-suite)"],
    );
}
