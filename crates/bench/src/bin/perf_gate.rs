//! The perf-smoke regression gate: compares a fresh criterion-shim JSON
//! report against a committed baseline and fails (exit 1) if any shared
//! benchmark regressed beyond the allowed factor.
//!
//! ```text
//! perf_gate <current.json> <baseline.json> [max_ratio]
//! perf_gate --pair <report.json> <name_a> <name_b> <max_ratio>
//! ```
//!
//! A benchmark present in the baseline but absent from the fresh report is
//! a **hard failure** (`MISS`), not a skip: a renamed or silently dropped
//! bench would otherwise un-gate itself forever. Retiring a bench means
//! retiring its baseline entry in the same change.
//!
//! `--pair` gates a single within-report ratio: it fails unless
//! `median(name_a) <= max_ratio * median(name_b)`. CI uses it as the
//! sharded-vs-unsharded gate on `bench_shard` output — one report, one
//! run, so machine speed cancels exactly.
//!
//! The gate is deliberately generous (default 3×), and it is
//! **machine-normalised by construction**: `bench_hotpath` groups each
//! shipping hot path with a frozen pre-slab reference implementation in
//! the *same* group (`full_scan/.../hashmap_partial` vs `.../slab_engine`,
//! etc.), so the gated quantity is the within-run pair ratio
//! `variant_ns / reference_ns` — a pure code-vs-code number in which the
//! runner's absolute speed cancels exactly. A CI box 4× slower than the
//! machine that recorded `BENCH_hotpath_baseline.json` moves both sides of
//! every pair equally; a PR that slows the slab engine 5× moves only the
//! shipping side, and fails no matter which machine runs the gate. (A
//! regression in code shared by a pair — the access layer under both
//! sides, say — cancels too; catching that is the job of reading the
//! archived absolute-time trajectory, not the gate.) The group reference
//! is the variant with the largest *baseline* median; groups with a
//! single benchmark have no within-run reference and are reported but not
//! gated, so adding or retiring benches never breaks the gate.

use std::process::ExitCode;

/// Minimal parser for the shim's flat report:
/// `{"benchmarks": [{"name": "...", "median_ns": 123.45, ...}, ...]}`.
/// Hand-rolled (the workspace builds offline, without serde); tolerant of
/// whitespace but not of a reordered or re-nested schema.
fn parse_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find("\"name\":") {
        rest = &rest[start + "\"name\":".len()..];
        let Some(open) = rest.find('"') else { break };
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let name = rest[..close].to_owned();
        rest = &rest[close + 1..];
        let Some(med) = rest.find("\"median_ns\":") else {
            break;
        };
        rest = &rest[med + "\"median_ns\":".len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(value) = rest[..end].trim().parse::<f64>() {
            out.push((name, value));
        }
        rest = &rest[end..];
    }
    out
}

/// The group a benchmark belongs to: everything before the last `/` of
/// its `group/variant` name (the whole name if it has no `/`).
fn group_of(name: &str) -> &str {
    name.rfind('/').map_or(name, |cut| &name[..cut])
}

/// One gate verdict: `Some(true)` = fail, `Some(false)` = ok, `None` = no
/// within-group reference to gate against.
fn verdicts(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    max_ratio: f64,
) -> Vec<(String, Option<bool>, String)> {
    // Benchmarks present on both sides, in baseline order.
    let shared: Vec<(&str, f64, f64)> = baseline
        .iter()
        .filter_map(|(name, base_ns)| {
            let (_, cur_ns) = current.iter().find(|(n, _)| n == name)?;
            (*base_ns > 0.0 && *cur_ns > 0.0).then_some((name.as_str(), *cur_ns, *base_ns))
        })
        .collect();

    // Per group, the reference is the variant with the largest baseline
    // median (the frozen pre-optimisation implementation).
    let reference_of = |group: &str| -> Option<(&str, f64, f64)> {
        let members: Vec<_> = shared
            .iter()
            .filter(|(name, _, _)| group_of(name) == group)
            .collect();
        if members.len() < 2 {
            return None;
        }
        members
            .into_iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("medians are finite"))
            .copied()
    };

    shared
        .iter()
        .map(|&(name, cur_ns, base_ns)| {
            match reference_of(group_of(name)) {
                Some((ref_name, ref_cur, ref_base)) if ref_name != name => {
                    // The machine-invariant quantity: this variant's cost
                    // relative to its in-run reference, vs the same pair
                    // ratio in the baseline.
                    let regression = (cur_ns / ref_cur) / (base_ns / ref_base);
                    let detail = format!(
                        "{cur_ns:.0} ns ({:.2}x of {ref_name} now, {:.2}x at baseline → \
                         {regression:.2}x regression)",
                        cur_ns / ref_cur,
                        base_ns / ref_base,
                    );
                    (name.to_owned(), Some(regression > max_ratio), detail)
                }
                Some(_) => (
                    name.to_owned(),
                    None,
                    format!("{cur_ns:.0} ns (group reference)"),
                ),
                None => (
                    name.to_owned(),
                    None,
                    format!("{cur_ns:.0} ns (no in-group reference, not gated)"),
                ),
            }
        })
        .collect()
}

/// Baseline benchmarks with no counterpart in the fresh report. Any entry
/// here fails the gate: a bench that disappears must take its baseline
/// entry with it, or the gate would silently shrink.
fn missing_from_current(current: &[(String, f64)], baseline: &[(String, f64)]) -> Vec<String> {
    baseline
        .iter()
        .filter(|(name, _)| !current.iter().any(|(n, _)| n == name))
        .map(|(name, _)| name.clone())
        .collect()
}

/// The `--pair` verdict: `Ok((ratio, detail))` when `median(name_a) <=
/// max_ratio * median(name_b)` within one report, `Err(reason)` when the
/// ratio is exceeded or either benchmark is absent.
fn check_pair(
    report: &[(String, f64)],
    name_a: &str,
    name_b: &str,
    max_ratio: f64,
) -> Result<(f64, String), String> {
    let median = |name: &str| -> Result<f64, String> {
        report
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ns)| ns)
            .filter(|&ns| ns > 0.0)
            .ok_or_else(|| format!("benchmark {name} missing from the report"))
    };
    let (a, b) = (median(name_a)?, median(name_b)?);
    let ratio = a / b;
    if ratio > max_ratio {
        return Err(format!(
            "{name_a} is {ratio:.2}x of {name_b} ({a:.0} ns vs {b:.0} ns), over the {max_ratio}x gate"
        ));
    }
    Ok((
        ratio,
        format!(
            "{name_a} is {ratio:.2}x of {name_b} ({a:.0} ns vs {b:.0} ns), within {max_ratio}x"
        ),
    ))
}

fn pair_mode(args: &[String]) -> ExitCode {
    let [report_path, name_a, name_b, max_ratio] = &args[2..] else {
        eprintln!("usage: perf_gate --pair <report.json> <name_a> <name_b> <max_ratio>");
        return ExitCode::FAILURE;
    };
    let max_ratio: f64 = max_ratio.parse().expect("max_ratio must be a number");
    let report = std::fs::read_to_string(report_path)
        .unwrap_or_else(|e| panic!("reading {report_path}: {e}"));
    match check_pair(&parse_medians(&report), name_a, name_b, max_ratio) {
        Ok((_, detail)) => {
            println!("ok    {detail}");
            ExitCode::SUCCESS
        }
        Err(reason) => {
            eprintln!("FAIL  {reason}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "--pair") {
        return pair_mode(&args);
    }
    if args.len() < 3 {
        eprintln!("usage: perf_gate <current.json> <baseline.json> [max_ratio]");
        eprintln!("       perf_gate --pair <report.json> <name_a> <name_b> <max_ratio>");
        return ExitCode::FAILURE;
    }
    let max_ratio: f64 = args
        .get(3)
        .map(|r| r.parse().expect("max_ratio must be a number"))
        .unwrap_or(3.0);
    let current =
        std::fs::read_to_string(&args[1]).unwrap_or_else(|e| panic!("reading {}: {e}", args[1]));
    let baseline =
        std::fs::read_to_string(&args[2]).unwrap_or_else(|e| panic!("reading {}: {e}", args[2]));
    let current = parse_medians(&current);
    let baseline = parse_medians(&baseline);

    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("NEW   {name}: no baseline yet");
        }
    }
    let missing = missing_from_current(&current, &baseline);
    for name in &missing {
        println!("MISS  {name}: in baseline but not in current report");
    }

    let verdicts = verdicts(&current, &baseline, max_ratio);
    let mut gated = 0usize;
    let mut failed = false;
    for (name, verdict, detail) in &verdicts {
        let tag = match verdict {
            Some(true) => {
                failed = true;
                gated += 1;
                "FAIL"
            }
            Some(false) => {
                gated += 1;
                "ok"
            }
            None => "ref",
        };
        println!("{tag:<5} {name}: {detail}");
    }
    if gated == 0 {
        eprintln!("perf_gate: no gateable benchmark pairs between report and baseline");
        return ExitCode::FAILURE;
    }
    if !missing.is_empty() {
        eprintln!(
            "perf_gate: {} baseline benchmark(s) missing from the current report \
             (renamed or dropped benches must retire their baseline entries)",
            missing.len()
        );
        return ExitCode::FAILURE;
    }
    if failed {
        eprintln!("perf_gate: regression beyond {max_ratio}x (pair-normalized) detected");
        return ExitCode::FAILURE;
    }
    println!("perf_gate: {gated} benchmarks within {max_ratio}x of their baseline pair ratios");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{check_pair, group_of, missing_from_current, parse_medians, verdicts};

    #[test]
    fn parses_the_shim_schema() {
        let json = r#"{
  "benchmarks": [
    {"name": "a/b", "median_ns": 12.50, "min_ns": 10.00, "max_ns": 20.00, "iters_per_sample": 3, "sample_size": 10},
    {"name": "c", "median_ns": 7.00, "min_ns": 6.00, "max_ns": 9.00, "iters_per_sample": 1, "sample_size": 10}
  ]
}"#;
        let parsed = parse_medians(json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("a/b".to_owned(), 12.5));
        assert_eq!(parsed[1].1, 7.0);
    }

    #[test]
    fn groups_split_on_the_last_slash() {
        assert_eq!(group_of("full_scan/N1_m3/slab"), "full_scan/N1_m3");
        assert_eq!(group_of("bare"), "bare");
    }

    fn report(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|&(n, v)| (n.to_owned(), v)).collect()
    }

    #[test]
    fn uniform_machine_slowdown_passes() {
        let base = report(&[("g/reference", 100.0), ("g/fast", 20.0)]);
        // A 5x slower machine moves both sides equally.
        let cur = report(&[("g/reference", 500.0), ("g/fast", 100.0)]);
        let v = verdicts(&cur, &base, 3.0);
        assert!(v.iter().all(|(_, verdict, _)| *verdict != Some(true)));
    }

    #[test]
    fn shipping_path_regression_fails_even_on_a_slow_machine() {
        let base = report(&[("g/reference", 100.0), ("g/fast", 20.0)]);
        // 2x slower machine AND the fast path regressed 5x: pair ratio
        // goes 0.2 → 1.0, a 5x pair regression.
        let cur = report(&[("g/reference", 200.0), ("g/fast", 200.0)]);
        let v = verdicts(&cur, &base, 3.0);
        let fast = v.iter().find(|(n, _, _)| n == "g/fast").unwrap();
        assert_eq!(fast.1, Some(true));
        let reference = v.iter().find(|(n, _, _)| n == "g/reference").unwrap();
        assert_eq!(reference.1, None, "the reference itself is not gated");
    }

    #[test]
    fn a_baseline_bench_absent_from_the_fresh_run_is_a_hard_failure() {
        // Regression: a dropped/renamed bench used to print "SKIP" and
        // pass, silently un-gating itself. It must now be reported as
        // missing, which main() turns into exit 1.
        let base = report(&[
            ("g/reference", 100.0),
            ("g/fast", 20.0),
            ("g/dropped", 40.0),
        ]);
        let cur = report(&[("g/reference", 100.0), ("g/fast", 20.0)]);
        assert_eq!(missing_from_current(&cur, &base), vec!["g/dropped"]);
        assert!(
            missing_from_current(&base, &base).is_empty(),
            "identical reports have nothing missing"
        );
        // New benches in the current report are fine — only the baseline
        // side is load-bearing.
        let grown = report(&[("g/reference", 100.0), ("g/fast", 20.0), ("g/new", 5.0)]);
        assert!(missing_from_current(&grown, &base[..2]).is_empty());
    }

    #[test]
    fn pair_gate_compares_two_medians_within_one_report() {
        let rep = report(&[
            ("shard_topk/k10/sharded", 90.0),
            ("shard_topk/k10/unsharded", 100.0),
        ]);
        let ok = check_pair(
            &rep,
            "shard_topk/k10/sharded",
            "shard_topk/k10/unsharded",
            1.5,
        );
        assert!(ok.is_ok());
        assert!((ok.unwrap().0 - 0.9).abs() < 1e-9);

        let over = check_pair(
            &rep,
            "shard_topk/k10/unsharded",
            "shard_topk/k10/sharded",
            1.05,
        );
        let reason = over.unwrap_err();
        assert!(reason.contains("over the 1.05x gate"), "{reason}");

        let absent = check_pair(&rep, "shard_topk/k10/sharded", "nope", 2.0);
        assert!(absent.unwrap_err().contains("missing"));
    }

    #[test]
    fn singleton_groups_are_reported_not_gated() {
        let base = report(&[
            ("solo/only", 50.0),
            ("g/reference", 100.0),
            ("g/fast", 20.0),
        ]);
        let cur = report(&[
            ("solo/only", 5000.0),
            ("g/reference", 100.0),
            ("g/fast", 20.0),
        ]);
        let v = verdicts(&cur, &base, 3.0);
        let solo = v.iter().find(|(n, _, _)| n == "solo/only").unwrap();
        assert_eq!(solo.1, None);
    }
}
