//! E08 — the median algorithm of Remark 6.1: the median of three lists is
//! monotone but not strict, so the Ω(N^((m−1)/m)) lower bound fails for it,
//! and the identity-(13) subset algorithm achieves O(√(Nk)).
//!
//! Three evaluators of the same query are compared:
//! * the subset algorithm (3 pairwise A₀′ runs + candidate pooling) —
//!   expected ~√N;
//! * generic A₀ with the median as its (monotone) aggregation — expected
//!   ~N^(2/3), since A₀'s stopping rule cannot exploit non-strictness;
//! * the naive scan — exactly 3N.

use garlic_agg::means::MedianAgg;
use garlic_bench::{emit, independent_workload, ExpArgs};
use garlic_core::access::total_stats;
use garlic_core::algorithms::{fa::fagin_topk, order_stat::median_topk};
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};
use garlic_workload::distributions::UniformGrades;

fn main() {
    let args = ExpArgs::parse(10);
    let ns: Vec<usize> = (0..6).map(|i| 1000 << i).collect(); // 1k .. 32k
    let k = 10;
    let m = 3;

    let mut table = Table::new(&[
        "N",
        "median alg",
        "generic A0",
        "naive 3N",
        "median/sqrt(Nk)",
    ]);
    let mut med_costs = Vec::new();
    let mut a0_costs = Vec::new();
    for &n in &ns {
        let mut med = 0u64;
        let mut a0 = 0u64;
        for t in 0..args.trials {
            let seed = 80_000 + t as u64;
            let sources = independent_workload(m, n, &UniformGrades, seed);
            median_topk(&sources, k).unwrap();
            med += total_stats(&sources).unweighted();

            let sources = independent_workload(m, n, &UniformGrades, seed);
            fagin_topk(&sources, &MedianAgg, k).unwrap();
            a0 += total_stats(&sources).unweighted();
        }
        let med = med as f64 / args.trials as f64;
        let a0 = a0 as f64 / args.trials as f64;
        med_costs.push(med);
        a0_costs.push(a0);
        table.add_row(vec![
            n.to_string(),
            fmt_f64(med, 0),
            fmt_f64(a0, 0),
            (3 * n).to_string(),
            fmt_f64(med / ((n * k) as f64).sqrt(), 3),
        ]);
    }

    let nsf: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let med_fit = log_log_fit(&nsf, &med_costs);
    let a0_fit = log_log_fit(&nsf, &a0_costs);
    let note1 = format!(
        "median-algorithm exponent {} (Remark 6.1 predicts 0.5)",
        fmt_f64(med_fit.slope, 3)
    );
    let note2 = format!(
        "generic-A0 exponent {} (Theorem 5.3 predicts (m-1)/m = 0.667 — A0 cannot exploit non-strictness)",
        fmt_f64(a0_fit.slope, 3)
    );
    emit(
        "E08: the median query, m = 3 (k = 10)",
        "Remark 6.1: median is monotone but not strict; the subset algorithm runs in O(sqrt(Nk)), beating the generic bound",
        &args,
        &table,
        &[&note1, &note2],
    );
}
