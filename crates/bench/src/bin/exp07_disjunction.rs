//! E07 — algorithm B₀ for the standard fuzzy disjunction (Theorem 4.5,
//! Remark 6.1): "middleware cost only mk, independent of the size N of the
//! database!" — max is monotone but not strict, so the Ω lower bound does
//! not apply, and indeed B₀ beats it.

use garlic_bench::{emit, independent_workload, ExpArgs};
use garlic_core::access::total_stats;
use garlic_core::algorithms::b0_max::b0_max_topk;
use garlic_stats::Table;
use garlic_workload::distributions::UniformGrades;

fn main() {
    let args = ExpArgs::parse(5);
    let ns: Vec<usize> = (0..5).map(|i| 1000 << (2 * i)).collect(); // 1k .. 256k
    let k = 10;

    let mut table = Table::new(&["m", "N", "sorted cost", "random cost", "m*k"]);
    for m in [2usize, 3, 5] {
        for &n in &ns {
            // Cost is deterministic; one trial suffices but we verify all.
            let mut sorted = 0u64;
            let mut random = 0u64;
            for t in 0..args.trials {
                let sources = independent_workload(m, n, &UniformGrades, 70_000 + t as u64);
                b0_max_topk(&sources, k).unwrap();
                let stats = total_stats(&sources);
                sorted += stats.sorted;
                random += stats.random;
            }
            table.add_row(vec![
                m.to_string(),
                n.to_string(),
                (sorted / args.trials as u64).to_string(),
                (random / args.trials as u64).to_string(),
                (m * k).to_string(),
            ]);
        }
    }

    emit(
        "E07: disjunction via B0 (k = 10)",
        "Theorem 4.5 / Remark 6.1: B0 costs exactly m*k sorted accesses and 0 random accesses, independent of N",
        &args,
        &table,
        &["every row's sorted cost must equal m*k exactly, at every N"],
    );
}
