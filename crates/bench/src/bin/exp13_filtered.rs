//! E13 — the "Beatles" filtered strategy (Section 4's opening): when one
//! conjunct is crisp and selective, enumerating its match set and probing
//! the fuzzy conjunct by random access beats running A₀′. As selectivity
//! grows the advantage flips — the crossover the middleware planner's
//! heuristic is built around.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, ExpArgs};
use garlic_core::access::{counted, total_stats, CountingSource, MemorySource};
use garlic_core::algorithms::{fa_min::fagin_min_topk, filtered::filtered_topk};
use garlic_core::GradedSource;
use garlic_stats::table::fmt_f64;
use garlic_stats::Table;
use garlic_subsys::CrispSource;
use garlic_workload::distributions::{CrispGrades, GradeDistribution, UniformGrades};
use garlic_workload::skeleton::Skeleton;

fn main() {
    let args = ExpArgs::parse(10);
    let n = 20_000;
    let k = 10;
    let selectivities = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5];

    let mut table = Table::new(&["selectivity", "|S|", "filtered cost", "A0' cost", "winner"]);
    for &p in &selectivities {
        let crisp_dist = CrispGrades::new(p);
        let mut filtered_cost = 0u64;
        let mut fa_cost = 0u64;
        for t in 0..args.trials {
            let mut rng = garlic_workload::seeded_rng(130_000 + t as u64);
            let skeleton = Skeleton::random(2, n, &mut rng);

            // List 0: crisp predicate along skeleton list 0.
            let matches: Vec<garlic_core::ObjectId> = skeleton
                .prefix(0, crisp_dist.matches(n))
                .into_iter()
                .collect();
            let crisp = CrispSource::new(n, matches);
            // List 1: fuzzy grades along skeleton list 1.
            let grades = UniformGrades.descending_grades(n, &mut rng);
            let fuzzy =
                MemorySource::from_pairs(skeleton.list(1).iter().zip(grades.iter().copied()));

            // Filtered strategy.
            let c = CountingSource::new(crisp.clone());
            let f = counted(vec![fuzzy.clone()]);
            filtered_topk(&c, &f, 0, &min_agg(), k.min(n)).unwrap();
            filtered_cost += c.stats().unweighted() + total_stats(&f).unweighted();

            // A0' on the same two lists.
            let both: Vec<CountingSource<Box<dyn GradedSource>>> = vec![
                CountingSource::new(Box::new(crisp) as Box<dyn GradedSource>),
                CountingSource::new(Box::new(fuzzy) as Box<dyn GradedSource>),
            ];
            fagin_min_topk(&both, k).unwrap();
            fa_cost += total_stats(&both).unweighted();
        }
        let filtered = filtered_cost as f64 / args.trials as f64;
        let fa = fa_cost as f64 / args.trials as f64;
        table.add_row(vec![
            format!("{p}"),
            crisp_dist.matches(n).to_string(),
            fmt_f64(filtered, 0),
            fmt_f64(fa, 0),
            if filtered < fa { "filtered" } else { "A0'" }.to_owned(),
        ]);
    }

    emit(
        "E13: filtered strategy vs A0' (N = 20000, k = 10)",
        "Section 4: with a selective crisp conjunct, filter-then-probe costs ~2|S|, beating A0' until |S| grows past the sqrt(Nk) scale",
        &args,
        &table,
        &["the winner column should flip from 'filtered' to \"A0'\" as selectivity rises"],
    );
}
