//! E02 — Theorem 5.3's exponent in the number of lists: the cost grows as
//! `N^((m−1)/m)`, so the measured log-log slope should track
//! 1/2, 2/3, 3/4, 4/5 for m = 2, 3, 4, 5.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, fa_mean_cost, ExpArgs};
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};

fn main() {
    let args = ExpArgs::parse(15);
    let ns: Vec<usize> = (0..5).map(|i| 4000 << i).collect(); // 4k .. 64k
    let k = 10;

    let mut table = Table::new(&["m", "N", "mean cost"]);
    let mut notes_owned = Vec::new();
    for m in 2..=5 {
        let mut costs = Vec::new();
        for &n in &ns {
            let mean = fa_mean_cost(m, n, k, &min_agg(), args.trials, 2024);
            costs.push(mean);
            table.add_row(vec![m.to_string(), n.to_string(), fmt_f64(mean, 1)]);
        }
        let fit = log_log_fit(&ns.iter().map(|&n| n as f64).collect::<Vec<_>>(), &costs);
        let predicted = (m as f64 - 1.0) / m as f64;
        notes_owned.push(format!(
            "m = {m}: measured exponent {} vs predicted (m-1)/m = {} (R^2 = {})",
            fmt_f64(fit.slope, 3),
            fmt_f64(predicted, 3),
            fmt_f64(fit.r_squared, 4)
        ));
    }

    let notes: Vec<&str> = notes_owned.iter().map(String::as_str).collect();
    emit(
        "E02: A0 cost exponent vs m",
        "Theorem 5.3: cost Θ(N^((m-1)/m) k^(1/m)) whp for m independent lists",
        &args,
        &table,
        &notes,
    );
}
