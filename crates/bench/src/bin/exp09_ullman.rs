//! E09 — Ullman's algorithm under the two Section 9 grade regimes:
//!
//! * list 1 bounded by 0.9, list 2 uniform: "the expected time to stop is
//!   after at most 10 objects have been seen, independent of the number N"
//!   → constant cost;
//! * both lists uniform: Ariel Landau's analysis gives Θ(√N) — "no better
//!   than our algorithm A₀".

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, ExpArgs};
use garlic_core::access::{counted, total_stats};
use garlic_core::algorithms::{fa::fagin_topk, ullman::ullman_run};
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};
use garlic_workload::distributions::{BoundedGrades, GradeDistribution, UniformGrades};
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

fn mean_probes(
    n: usize,
    dists: [&dyn GradeDistribution; 2],
    trials: usize,
    seed0: u64,
) -> (f64, f64) {
    let mut probes = 0usize;
    let mut cost = 0u64;
    for t in 0..trials {
        let mut rng = garlic_workload::seeded_rng(seed0 + t as u64);
        let skeleton = Skeleton::random(2, n, &mut rng);
        let db = ScoringDatabase::from_skeleton_per_list(&skeleton, &dists, &mut rng);
        let sources = counted(db.to_sources());
        let run = ullman_run(&sources, 1).unwrap();
        probes += run.probes;
        cost += total_stats(&sources).unweighted();
    }
    (probes as f64 / trials as f64, cost as f64 / trials as f64)
}

fn main() {
    let args = ExpArgs::parse(50);
    let ns: Vec<usize> = (0..6).map(|i| 1000 << i).collect(); // 1k .. 32k
    let bounded = BoundedGrades::new(0.9);
    let uniform = UniformGrades;

    let mut table = Table::new(&[
        "N",
        "bounded: probes",
        "uniform: probes",
        "uniform probes/sqrt(N)",
        "A0 cost (uniform)",
    ]);
    let mut uniform_probes = Vec::new();
    for &n in &ns {
        let (pb, _) = mean_probes(n, [&bounded, &uniform], args.trials, 90_000);
        let (pu, _) = mean_probes(n, [&uniform, &uniform], args.trials, 91_000);
        uniform_probes.push(pu);

        // A0 baseline on the same uniform workload.
        let mut a0 = 0u64;
        for t in 0..args.trials {
            let mut rng = garlic_workload::seeded_rng(91_000 + t as u64);
            let skeleton = Skeleton::random(2, n, &mut rng);
            let db =
                ScoringDatabase::from_skeleton_per_list(&skeleton, &[&uniform, &uniform], &mut rng);
            let sources = counted(db.to_sources());
            fagin_topk(&sources, &min_agg(), 1).unwrap();
            a0 += total_stats(&sources).unweighted();
        }
        table.add_row(vec![
            n.to_string(),
            fmt_f64(pb, 1),
            fmt_f64(pu, 1),
            fmt_f64(pu / (n as f64).sqrt(), 3),
            fmt_f64(a0 as f64 / args.trials as f64, 0),
        ]);
    }

    let fit = log_log_fit(
        &ns.iter().map(|&n| n as f64).collect::<Vec<_>>(),
        &uniform_probes,
    );
    let note1 = "bounded regime: probes should hover near 10 at every N (constant cost)";
    let note2 = format!(
        "uniform regime: probe exponent {} (Landau predicts 0.5 — no better than A0)",
        fmt_f64(fit.slope, 3)
    );
    emit(
        "E09: Ullman's algorithm, Section 9 regimes (k = 1)",
        "bounded-by-0.9 list 1 + uniform list 2 => ~10 probes regardless of N; both uniform => Θ(sqrt(N))",
        &args,
        &table,
        &[note1, &note2],
    );
}
