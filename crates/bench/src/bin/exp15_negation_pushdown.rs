//! E15 (extension ablation) — negation pushdown via complement sources.
//!
//! Section 7 proves `Q ∧ ¬Q` is Θ(N) — but that is a statement about that
//! *correlated* query, not about negation per se. Pushing `¬B` into the
//! source layer (read B's list in reverse with complemented grades — the
//! §7 observation about π_{¬Q}) makes `A ∧ ¬B` a monotone two-list query,
//! and when A and B are independent, ¬B's list is just another independent
//! permutation: Theorem 5.3 applies and A₀ runs in Θ(√(Nk)).
//!
//! The table contrasts the two regimes: independent `A ∧ ¬B` (sublinear)
//! vs the self-negated `Q ∧ ¬Q` (linear), both evaluated by the same
//! NNF + complement machinery.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, ExpArgs};
use garlic_core::access::{counted, total_stats};
use garlic_core::algorithms::fa::fagin_topk;
use garlic_core::complement::ComplementSource;
use garlic_core::GradedSource;
use garlic_stats::table::fmt_f64;
use garlic_stats::{log_log_fit, Table};
use garlic_workload::distributions::UniformGrades;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;

fn main() {
    let args = ExpArgs::parse(15);
    let ns: Vec<usize> = (0..6).map(|i| 1000 << i).collect(); // 1k .. 32k
    let k = 10;

    let mut table = Table::new(&["N", "A AND NOT B (indep)", "Q AND NOT Q (self)", "naive 2N"]);
    let mut indep_costs = Vec::new();
    let mut self_costs = Vec::new();
    for &n in &ns {
        let mut indep = 0u64;
        let mut selfneg = 0u64;
        for t in 0..args.trials {
            let mut rng = garlic_workload::seeded_rng(150_000 + t as u64);
            let skeleton = Skeleton::random(2, n, &mut rng);
            let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
            let mut sources = db.to_sources();
            let b = sources.pop().expect("two lists");
            let a = sources.pop().expect("two lists");

            // A ∧ ¬B: complement the independent second list.
            let pair: Vec<Box<dyn GradedSource>> =
                vec![Box::new(a.clone()), Box::new(ComplementSource::new(b))];
            let pair = counted(pair);
            fagin_topk(&pair, &min_agg(), k).unwrap();
            indep += total_stats(&pair).unweighted();

            // Q ∧ ¬Q: complement the SAME list (the §7 hard pairing).
            let pair: Vec<Box<dyn GradedSource>> =
                vec![Box::new(a.clone()), Box::new(ComplementSource::new(a))];
            let pair = counted(pair);
            fagin_topk(&pair, &min_agg(), k).unwrap();
            selfneg += total_stats(&pair).unweighted();
        }
        let indep = indep as f64 / args.trials as f64;
        let selfneg = selfneg as f64 / args.trials as f64;
        indep_costs.push(indep);
        self_costs.push(selfneg);
        table.add_row(vec![
            n.to_string(),
            fmt_f64(indep, 0),
            fmt_f64(selfneg, 0),
            (2 * n).to_string(),
        ]);
    }

    let nsf: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let fit_i = log_log_fit(&nsf, &indep_costs);
    let fit_s = log_log_fit(&nsf, &self_costs);
    let note1 = format!(
        "A AND NOT B exponent {} — sublinear, Theorem 5.3 applies to the complemented list",
        fmt_f64(fit_i.slope, 3)
    );
    let note2 = format!(
        "Q AND NOT Q exponent {} — linear, Theorem 7.1's hard query (same machinery, correlated lists)",
        fmt_f64(fit_s.slope, 3)
    );
    emit(
        "E15: negation pushdown (complement sources), k = 10",
        "extension: NNF + reversed complement lists make negated queries monotone; cost depends on correlation, not on negation itself",
        &args,
        &table,
        &[&note1, &note2],
    );
}
