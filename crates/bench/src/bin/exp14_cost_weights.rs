//! E14 — the weighted middleware cost `c₁S + c₂R` (Section 5, inequalities
//! (1)/(2)): because weighted and unweighted costs bracket each other by
//! constant factors, A₀'s optimality is insensitive to the weighting. The
//! sweep shows A₀ beating the naive scan under every weighting, including
//! ones that punish its random accesses heavily.

use garlic_agg::iterated::min_agg;
use garlic_bench::{emit, independent_workload, ExpArgs};
use garlic_core::access::total_stats;
use garlic_core::algorithms::{fa::fagin_topk, naive::naive_topk};
use garlic_core::CostModel;
use garlic_stats::table::fmt_f64;
use garlic_stats::Table;
use garlic_workload::distributions::UniformGrades;

fn main() {
    let args = ExpArgs::parse(10);
    let n = 16_384;
    let k = 10;
    let m = 2;
    let weightings = [
        (1.0, 1.0),
        (1.0, 10.0),
        (10.0, 1.0),
        (1.0, 100.0),
        (100.0, 1.0),
    ];

    // Measure access stats once per trial; re-weigh afterwards.
    let mut fa_stats = Vec::new();
    let mut naive_stats = Vec::new();
    for t in 0..args.trials {
        let seed = 140_000 + t as u64;
        let sources = independent_workload(m, n, &UniformGrades, seed);
        fagin_topk(&sources, &min_agg(), k).unwrap();
        fa_stats.push(total_stats(&sources));

        let sources = independent_workload(m, n, &UniformGrades, seed);
        naive_topk(&sources, &min_agg(), k).unwrap();
        naive_stats.push(total_stats(&sources));
    }

    let mut table = Table::new(&[
        "c1 (sorted)",
        "c2 (random)",
        "A0 cost",
        "naive cost",
        "speedup",
    ]);
    for &(c1, c2) in &weightings {
        let model = CostModel::new(c1, c2);
        let fa: f64 = fa_stats
            .iter()
            .map(|s| model.middleware_cost(*s))
            .sum::<f64>()
            / args.trials as f64;
        let naive: f64 = naive_stats
            .iter()
            .map(|s| model.middleware_cost(*s))
            .sum::<f64>()
            / args.trials as f64;
        table.add_row(vec![
            fmt_f64(c1, 0),
            fmt_f64(c2, 0),
            fmt_f64(fa, 0),
            fmt_f64(naive, 0),
            format!("{}x", fmt_f64(naive / fa, 1)),
        ]);
    }

    emit(
        "E14: cost-model weighting sweep (m = 2, N = 16384, k = 10)",
        "Section 5, eq. (1)/(2): weighted and unweighted costs bracket each other, so Θ-optimality holds for every positive (c1, c2)",
        &args,
        &table,
        &[
            "the naive scan uses 0 random accesses, so extreme c2 weightings are its best case:",
            "at (1, 100) it can win at this N — Θ-optimality is asymptotic, and the crossover N grows with c2/c1",
            "for every weighting A0 wins again once N is large enough (its cost is O(sqrt(Nk)) in *both* access kinds)",
        ],
    );
}
