//! # garlic-stats — measurement support for the experiment harness
//!
//! * [`summary`] — means, quantiles, exceedance probabilities;
//! * [`regression`] — log-log fits to recover cost exponents (how we verify
//!   the `N^((m−1)/m) k^(1/m)` law of Theorem 5.3);
//! * [`bounds`] — the paper's analytic bounds as computable curves
//!   (Lemma 5.1, the Theorem 5.3 failure probability, Wimmers' m = 2 tail);
//! * [`table`] — fixed-width/CSV tables for the `expNN_*` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod regression;
pub mod summary;
pub mod table;

pub use regression::{linear_fit, log_log_fit, LinearFit};
pub use summary::{exceedance, quantile, wilson_interval, Summary};
pub use table::Table;
