//! Fixed-width text tables (and CSV) for the experiment binaries, so every
//! `expNN_*` harness prints paper-style rows that can be pasted into
//! EXPERIMENTS.md.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a fixed-width text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting — the harness only emits plain cells).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a machine-readable JSON document: one object per row,
    /// keyed by header. Numeric-looking cells are emitted as numbers so CI
    /// consumers can plot trajectories without re-parsing strings.
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn cell_json(s: &str) -> String {
            // Cells are produced by the harness itself (numbers or plain
            // labels). Re-serialise through f64 so the emitted token is a
            // lawful JSON number (Rust accepts "007"/".5"/"+1"; JSON
            // does not).
            match s.parse::<f64>() {
                Ok(v) if v.is_finite() && !s.is_empty() => format!("{v}"),
                _ => format!("\"{}\"", escape(s)),
            }
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let fields: Vec<String> = self
                    .headers
                    .iter()
                    .zip(row)
                    .map(|(h, cell)| format!("\"{}\": {}", escape(h), cell_json(cell)))
                    .collect();
                format!("    {{{}}}", fields.join(", "))
            })
            .collect();
        format!("{{\n  \"rows\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
    }
}

/// Formats an f64 with `digits` significant decimals, trimming noise.
pub fn fmt_f64(v: f64, digits: usize) -> String {
    format!("{:.*}", digits, v)
}

/// Formats a probability in compact scientific notation.
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_owned()
    } else if p >= 0.001 {
        format!("{p:.4}")
    } else {
        format!("{p:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["N", "cost"]);
        t.add_row(vec!["1000".into(), "63.2".into()]);
        t.add_row(vec!["2000".into(), "90.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('N') && lines[0].contains("cost"));
        assert!(lines[2].trim_start().starts_with("1000"));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn json_output_types_cells() {
        let mut t = Table::new(&["N", "strategy", "cost"]);
        t.add_row(vec!["1000".into(), "FaMin".into(), "63.2".into()]);
        let json = t.to_json();
        assert!(json.contains("\"N\": 1000"));
        assert!(json.contains("\"strategy\": \"FaMin\""));
        assert!(json.contains("\"cost\": 63.2"));
        assert!(json.starts_with("{\n  \"rows\": ["));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_prob(0.5), "0.5000");
        assert_eq!(fmt_prob(1e-9), "1.00e-9");
        assert_eq!(fmt_prob(0.0), "0");
    }
}
