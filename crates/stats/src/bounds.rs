//! The analytic bounds of the paper, as computable functions.
//!
//! These are the *predicted* curves that experiment tables print next to the
//! measured values:
//!
//! * Lemma 5.1's Chernoff tail `e^{−M/10}` for the intersection shortfall;
//! * the Theorem 5.3 proof's failure-probability sum `Σ_{j=2}^m e^{−d_j/5}`
//!   with `d_j = c·N^((m−j)/m)·k^(j/m)`;
//! * the cost formula itself, `N^((m−1)/m)·k^(1/m)`;
//! * Wimmers' refined m = 2 tail with dominant term `e^{−c²k}` (the paper
//!   quotes < 2·10⁻⁸ at c = 2 and < 4·10⁻²⁷ at c = 3 for the depth
//!   threshold `c·√(Nk)`).

/// Lemma 5.1: `Pr[|B| <= M/2] < e^{−M/10}` where `M` is the expected
/// intersection size.
pub fn lemma_5_1_tail(expected_size: f64) -> f64 {
    assert!(expected_size >= 0.0);
    (-expected_size / 10.0).exp()
}

/// The Theorem 5.3 cost scale `N^((m−1)/m) · k^(1/m)` (the Θ expression of
/// Theorem 6.5 without its constant).
pub fn cost_scale(n: f64, m: usize, k: f64) -> f64 {
    assert!(n > 0.0 && k > 0.0 && m >= 1);
    let mf = m as f64;
    n.powf((mf - 1.0) / mf) * k.powf(1.0 / mf)
}

/// The intermediate quantities `d_j = c·N^((m−j)/m)·k^(j/m)` from the proof
/// of Theorem 5.3 (note `d_1 = T/c·c = T` and `d_m = c·k`).
pub fn d_j(c: f64, n: f64, m: usize, k: f64, j: usize) -> f64 {
    assert!(j >= 1 && j <= m);
    let mf = m as f64;
    c * n.powf((mf - j as f64) / mf) * k.powf(j as f64 / mf)
}

/// The proof's bound on `Pr[|∩ᵢ X^i_T| < k]` for `T = ⌈c·N^((m−1)/m)k^(1/m)⌉`:
/// `Σ_{j=2}^m e^{−d_j/5}`. For moderate `N` every term except the last
/// (`e^{−ck/5}`) is negligible — the paper points this out explicitly.
pub fn theorem_5_3_failure_bound(c: f64, n: f64, m: usize, k: f64) -> f64 {
    assert!(m >= 2, "the bound concerns multi-list queries");
    (2..=m).map(|j| (-d_j(c, n, m, k, j) / 5.0).exp()).sum()
}

/// Wimmers' refined m = 2 tail (dominant term): the probability that more
/// than `c·√(Nk)` objects are accessed by sorted access in each list decays
/// like `e^{−c²k}`.
pub fn wimmers_dominant_tail(c: f64, k: f64) -> f64 {
    assert!(c >= 0.0 && k > 0.0);
    (-c * c * k).exp()
}

/// The depth threshold `c·√(Nk)` that the Wimmers bound applies to.
pub fn wimmers_depth_threshold(c: f64, n: f64, k: f64) -> f64 {
    c * (n * k).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scale_special_cases() {
        // m = 2, k = 1: √N.
        assert!((cost_scale(10_000.0, 2, 1.0) - 100.0).abs() < 1e-9);
        // m = 1: k (the prefix itself).
        assert!((cost_scale(10_000.0, 1, 7.0) - 7.0).abs() < 1e-9);
        // k = N: the scale becomes N (Remark 5.2's linear regime).
        let n = 4096.0;
        assert!((cost_scale(n, 3, n) - n).abs() < 1e-6);
    }

    #[test]
    fn d_j_endpoints() {
        let (c, n, m, k) = (2.0, 1_000_000.0, 3, 10.0);
        // d_m = c·k.
        assert!((d_j(c, n, m, k, m) - c * k).abs() < 1e-9);
        // d_1 = c·N^((m-1)/m)·k^(1/m) = c · cost_scale.
        assert!((d_j(c, n, m, k, 1) - c * cost_scale(n, m, k)).abs() < 1e-6);
    }

    #[test]
    fn failure_bound_dominated_by_last_term() {
        // For moderate N the e^{−ck/5} term dominates (the paper's remark).
        let (c, n, m, k) = (2.0, 10_000.0, 2, 10.0);
        let total = theorem_5_3_failure_bound(c, n, m, k);
        let last = (-c * k / 5.0f64).exp();
        assert!(total >= last);
        assert!(total < 1.001 * last + 1e-30);
    }

    #[test]
    fn failure_bound_shrinks_with_c() {
        let (n, m, k) = (10_000.0, 3, 5.0);
        let weak = theorem_5_3_failure_bound(1.0, n, m, k);
        let strong = theorem_5_3_failure_bound(4.0, n, m, k);
        assert!(strong < weak);
    }

    #[test]
    fn lemma_tail_decreases() {
        assert!(lemma_5_1_tail(100.0) < lemma_5_1_tail(10.0));
        assert_eq!(lemma_5_1_tail(0.0), 1.0);
    }

    #[test]
    fn wimmers_tail_shape() {
        // Exponential decay in c² and in k.
        assert!(wimmers_dominant_tail(2.0, 1.0) < wimmers_dominant_tail(1.0, 1.0));
        assert!(wimmers_dominant_tail(2.0, 10.0) < wimmers_dominant_tail(2.0, 1.0));
        // Dominant-term value at c = 3, k = 1: e^{−9} ≈ 1.2e−4 (the full
        // Wimmers bound with its constants is far smaller — 4e−27 per the
        // paper; we only reproduce the dominant exponent).
        assert!((wimmers_dominant_tail(3.0, 1.0) - (-9.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn wimmers_threshold() {
        assert!((wimmers_depth_threshold(2.0, 100.0, 4.0) - 40.0).abs() < 1e-9);
    }
}
