//! Least-squares regression, used to estimate cost exponents.
//!
//! Theorem 5.3 predicts `cost ≈ C · N^((m−1)/m) · k^(1/m)`; fitting a line
//! to `(ln N, ln cost)` recovers the exponent `(m−1)/m` as the slope, which
//! is how experiments E01–E03 verify the scaling law.

/// An ordinary least-squares fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// The slope.
    pub slope: f64,
    /// The intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit; defined as 1
    /// when the responses are constant).
    pub r_squared: f64,
}

/// Fits a line by ordinary least squares.
///
/// # Panics
/// Panics with fewer than two points, non-finite inputs, or zero variance
/// in `x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points");
    assert!(
        xs.iter().chain(ys).all(|v| v.is_finite()),
        "non-finite input"
    );
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let syy: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    assert!(sxx > 0.0, "x values are constant");

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `cost ≈ C · n^e` by regressing `ln cost` on `ln n`; the returned
/// slope is the measured exponent `e`.
///
/// # Panics
/// Panics if any input is non-positive (logs must exist).
pub fn log_log_fit(ns: &[f64], costs: &[f64]) -> LinearFit {
    assert!(
        ns.iter().chain(costs).all(|v| *v > 0.0),
        "log-log fit needs positive values"
    );
    let lx: Vec<f64> = ns.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = costs.iter().map(|v| v.ln()).collect();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sqrt_law_exponent_recovered() {
        // cost = 7·√n → slope 0.5 in log-log space.
        let ns: Vec<f64> = (1..=6).map(|i| 1000.0 * 2f64.powi(i)).collect();
        let costs: Vec<f64> = ns.iter().map(|n| 7.0 * n.sqrt()).collect();
        let fit = log_log_fit(&ns, &costs);
        assert!((fit.slope - 0.5).abs() < 1e-9, "slope = {}", fit.slope);
        assert!((fit.intercept - 7.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_has_sub_one_r2() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.3];
        let fit = linear_fit(&xs, &ys);
        assert!(fit.r_squared > 0.98 && fit.r_squared < 1.0);
        assert!((fit.slope - 2.0).abs() < 0.1);
    }

    #[test]
    fn constant_response_is_perfectly_fit() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_single_point() {
        linear_fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic]
    fn log_log_rejects_nonpositive() {
        log_log_fit(&[0.0, 1.0], &[1.0, 2.0]);
    }
}
