//! Sample summaries for the experiment harness.

/// Summary statistics of a sample of f64 observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a non-empty sample.
    ///
    /// # Panics
    /// Panics on an empty sample or non-finite values.
    pub fn from_sample(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "cannot summarise an empty sample");
        assert!(
            sample.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let count = sample.len();
        let mean = sample.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation between
/// order statistics.
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn quantile(sample: &[f64], q: f64) -> f64 {
    assert!(!sample.is_empty(), "cannot take a quantile of nothing");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical exceedance probability: the fraction of observations strictly
/// greater than `threshold`. Used for the Wimmers tail experiment (E04).
pub fn exceedance(sample: &[f64], threshold: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.iter().filter(|&&x| x > threshold).count() as f64 / sample.len() as f64
}

/// The Wilson score interval for a binomial proportion at confidence level
/// `z` standard deviations (e.g. `z = 1.96` for ~95%). Returns
/// `(lower, upper)`. More honest than the normal approximation near 0 and 1
/// — which is exactly where the tail experiments (E04, E16) live.
///
/// # Panics
/// Panics if `trials == 0`, `successes > trials`, or `z < 0`.
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(z >= 0.0, "z must be non-negative");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - half) / denom).max(0.0),
        ((centre + half) / denom).min(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_hand_check() {
        let s = Summary::from_sample(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // variance = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn singleton_summary() {
        let s = Summary::from_sample(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn exceedance_counts_strictly_greater() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exceedance(&v, 2.0), 0.5);
        assert_eq!(exceedance(&v, 0.0), 1.0);
        assert_eq!(exceedance(&v, 4.0), 0.0);
        assert_eq!(exceedance(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_summary_rejected() {
        Summary::from_sample(&[]);
    }

    #[test]
    fn wilson_interval_contains_the_point_estimate() {
        for (s, n) in [
            (0usize, 100usize),
            (1, 100),
            (50, 100),
            (99, 100),
            (100, 100),
        ] {
            let (lo, hi) = wilson_interval(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "s={s}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_shrinks_with_trials() {
        let (lo1, hi1) = wilson_interval(5, 50, 1.96);
        let (lo2, hi2) = wilson_interval(500, 5000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_zero_successes_has_zero_lower_bound() {
        let (lo, hi) = wilson_interval(0, 1000, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
    }

    #[test]
    #[should_panic]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(5, 4, 1.96);
    }
}
