//! Concurrency suite: hammer the registry and a histogram from many
//! threads and pin the exact totals. Relaxed atomics lose no increments —
//! only ordering — so totals at quiescence must be exact.

use std::sync::Arc;

use garlic_telemetry::{MetricValue, Telemetry};

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn counter_hammer_pins_exact_total() {
    let t = Telemetry::new();
    std::thread::scope(|s| {
        for i in 0..THREADS {
            let t = Arc::clone(&t);
            s.spawn(move || {
                // Half the threads resolve the handle once (the intended hot
                // path), half re-resolve per batch (registry contention).
                if i % 2 == 0 {
                    let c = t.counter("hammer.total");
                    for _ in 0..OPS {
                        c.inc();
                    }
                } else {
                    for chunk in 0..10 {
                        let c = t.counter("hammer.total");
                        for _ in 0..OPS / 10 {
                            c.add(1);
                        }
                        // Interleave unrelated registrations to stress the maps.
                        t.gauge(&format!("hammer.scratch.{i}.{chunk}")).set(1);
                    }
                }
            });
        }
    });
    assert_eq!(t.counter("hammer.total").get(), THREADS as u64 * OPS);
    assert_eq!(t.snapshot().counter("hammer.total"), THREADS as u64 * OPS);
}

#[test]
fn histogram_hammer_pins_exact_count_and_sum() {
    let t = Telemetry::new();
    let h = t.histogram("hammer.lat_ns");
    std::thread::scope(|s| {
        for i in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for op in 0..OPS {
                    // Deterministic spread across buckets: thread i records
                    // values around 2^(i+4).
                    h.record((1u64 << (i + 4)) + op % 16);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS as u64 * OPS);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|i| (0..OPS).map(|op| (1u64 << (i + 4)) + op % 16).sum::<u64>())
        .sum();
    assert_eq!(snap.sum, expected_sum);
    // Every thread's bucket band is populated: thread i's values land in
    // bucket i+5 (values in [2^(i+4), 2^(i+5)) need i+5 bits).
    for i in 0..THREADS {
        assert_eq!(snap.buckets[i + 5], OPS, "bucket for thread {i}");
    }
    // Quantiles walk the same buckets the threads filled.
    assert!(snap.p50() >= 1 << 7);
    assert!(snap.p99() >= 1 << 11);
}

#[test]
fn concurrent_snapshots_observe_monotone_counts() {
    let t = Telemetry::new();
    let c = t.counter("mono");
    let h = t.histogram("mono.lat");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let (c, h) = (Arc::clone(&c), Arc::clone(&h));
            s.spawn(move || {
                for v in 0..OPS {
                    c.inc();
                    h.record(v);
                }
            });
        }
        // A reader thread snapshotting mid-flight must see monotone,
        // in-range totals (never torn above the true final count).
        let t2 = Arc::clone(&t);
        s.spawn(move || {
            let mut last = 0;
            for _ in 0..100 {
                let snap = t2.snapshot();
                let now = snap.counter("mono");
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                assert!(now <= THREADS as u64 * OPS);
                if let Some(MetricValue::Histogram(hs)) = snap.get("mono.lat") {
                    assert!(hs.count <= THREADS as u64 * OPS);
                }
                last = now;
            }
        });
    });
    assert_eq!(c.get(), THREADS as u64 * OPS);
    assert_eq!(h.count(), THREADS as u64 * OPS);
}
