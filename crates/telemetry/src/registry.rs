//! The named-metric registry and its snapshot serializers.
//!
//! "Lock-free" here means the *update* path: `counter("x")` resolves a
//! name to an `Arc<Counter>` once (under a short registration lock), and
//! every subsequent `inc()`/`record()` on the handle is a relaxed atomic.
//! Components are expected to resolve their handles at construction time
//! and never touch the registry maps per operation.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A pull-based metric producer: called at snapshot time to append
/// entries for state the component already tracks in its own atomics
/// (e.g. `CacheStats`), costing the component's hot path nothing.
type Collector = Box<dyn Fn(&mut Vec<MetricEntry>) + Send + Sync>;

/// The registry: named counters, gauges, histograms, and pull collectors.
///
/// Cheap to share (`Arc<Telemetry>`); all methods take `&self`.
#[derive(Default)]
pub struct Telemetry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    collectors: RwLock<Vec<Collector>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("counters", &self.counters.read().unwrap().len())
            .field("gauges", &self.gauges.read().unwrap().len())
            .field("histograms", &self.histograms.read().unwrap().len())
            .field("collectors", &self.collectors.read().unwrap().len())
            .finish()
    }
}

/// Get-or-register `name` in one of the metric maps.
fn resolve<M: Default>(map: &RwLock<BTreeMap<String, Arc<M>>>, name: &str) -> Arc<M> {
    if let Some(m) = map.read().unwrap().get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Telemetry {
    /// A fresh, shareable registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Get-or-register the counter named `name`. Resolve once, then update
    /// the returned handle lock-free.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.counters, name)
    }

    /// Get-or-register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.gauges, name)
    }

    /// Get-or-register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.histograms, name)
    }

    /// Registers a pull collector appended to every [`snapshot`]
    /// (`Telemetry::snapshot`). Use for components that already keep their
    /// own atomic stats and should not pay for double-counting.
    pub fn register_collector<F>(&self, f: F)
    where
        F: Fn(&mut Vec<MetricEntry>) + Send + Sync + 'static,
    {
        self.collectors.write().unwrap().push(Box::new(f));
    }

    /// A point-in-time copy of every registered metric plus collector
    /// output, sorted by name.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut entries = Vec::new();
        for (name, c) in self.counters.read().unwrap().iter() {
            entries.push(MetricEntry {
                name: name.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for (name, g) in self.gauges.read().unwrap().iter() {
            entries.push(MetricEntry {
                name: name.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for (name, h) in self.histograms.read().unwrap().iter() {
            entries.push(MetricEntry {
                name: name.clone(),
                value: MetricValue::Histogram(Box::new(h.snapshot())),
            });
        }
        for collect in self.collectors.read().unwrap().iter() {
            collect(&mut entries);
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        TelemetrySnapshot { entries }
    }
}

/// One metric's point-in-time value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotone total.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Latency distribution (boxed: the bucket array is ~half a KiB).
    Histogram(Box<HistogramSnapshot>),
}

/// One named metric in a snapshot.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Registered name (dotted, e.g. `cache.hits`).
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole [`Telemetry`] registry.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// All metrics, sorted by name.
    pub entries: Vec<MetricEntry>,
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else
/// (our dots) to `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Minimal JSON string escaping for metric names (which we control, but
/// serializers should never emit malformed output regardless).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TelemetrySnapshot {
    /// Finds an entry by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// A counter's value by name (0 if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms are rendered as summaries (p50/p95/p99 quantiles plus
    /// `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let name = prom_name(&e.name);
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                        out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object:
    /// `{"metrics": [{"name": ..., "type": ..., ...}]}`.
    pub fn to_json(&self) -> String {
        let mut items = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let name = json_string(&e.name);
            items.push(match &e.value {
                MetricValue::Counter(v) => {
                    format!("{{\"name\": {name}, \"type\": \"counter\", \"value\": {v}}}")
                }
                MetricValue::Gauge(v) => {
                    format!("{{\"name\": {name}, \"type\": \"gauge\", \"value\": {v}}}")
                }
                MetricValue::Histogram(h) => format!(
                    "{{\"name\": {name}, \"type\": \"histogram\", \"count\": {}, \
                     \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    h.count,
                    h.sum,
                    h.p50(),
                    h.p95(),
                    h.p99()
                ),
            });
        }
        format!("{{\"metrics\": [\n  {}\n]}}\n", items.join(",\n  "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_resolves_same_handle() {
        let t = Telemetry::new();
        let a = t.counter("queries");
        let b = t.counter("queries");
        a.inc();
        b.add(2);
        assert_eq!(t.counter("queries").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let t = Telemetry::new();
        t.counter("b.count").add(5);
        t.gauge("a.depth").set(-2);
        t.histogram("c.lat_ns").record(100);
        t.register_collector(|out| {
            out.push(MetricEntry {
                name: "a.collected".into(),
                value: MetricValue::Counter(7),
            });
        });
        let s = t.snapshot();
        let names: Vec<&str> = s.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.collected", "a.depth", "b.count", "c.lat_ns"]);
        assert_eq!(s.counter("a.collected"), 7);
        assert_eq!(s.counter("b.count"), 5);
        assert!(matches!(s.get("a.depth"), Some(MetricValue::Gauge(-2))));
    }

    #[test]
    fn prometheus_rendering() {
        let t = Telemetry::new();
        t.counter("service.queries").add(9);
        t.histogram("service.latency_ns").record(1000);
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("# TYPE service_queries counter\nservice_queries 9\n"));
        assert!(text.contains("# TYPE service_latency_ns summary\n"));
        assert!(text.contains("service_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("service_latency_ns_count 1\n"));
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let t = Telemetry::new();
        t.counter("x").inc();
        t.gauge("y").set(3);
        t.histogram("z").record(7);
        let json = t.snapshot().to_json();
        assert!(json.starts_with("{\"metrics\": ["));
        assert!(json.contains("\"name\": \"x\", \"type\": \"counter\", \"value\": 1"));
        assert!(json.contains("\"name\": \"y\", \"type\": \"gauge\", \"value\": 3"));
        assert!(json.contains("\"name\": \"z\", \"type\": \"histogram\", \"count\": 1"));
        // Balanced braces (the shim-JSON consumers do structural parsing).
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }
}
