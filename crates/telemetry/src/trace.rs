//! Per-query execution traces: a span tree rendered as an EXPLAIN output.
//!
//! A [`QueryTrace`] is built by the layer that executes a query (the
//! middleware) and filled in by the layers below it: the plan decision,
//! the chosen strategy, the engine's sorted/random phases, per-source
//! Section 5 access counts, and block-cache activity. It is plain data —
//! building one costs a few allocations per query *phase*, never per
//! entry — and renders as a tree:
//!
//! ```text
//! query: (A ∧ B) top-10
//! ├─ plan: FaMin  [estimated_cost=1234.0]
//! └─ execute  [2.31ms]
//!    ├─ engine  [sorted_ns=..., random_ns=..., depth=420]
//!    ├─ source[0] "A"  [S=420 R=37]
//!    └─ cache  [hits=12 misses=3]
//! ```

use std::fmt;
use std::time::Instant;

/// One node in the trace tree: a name, optional duration, ordered
/// key=value fields, and children.
#[derive(Debug, Clone, Default)]
pub struct Span {
    /// What this span covers (e.g. `plan`, `engine`, `source[0] "A"`).
    pub name: String,
    /// Wall-clock duration, when timed.
    pub duration_ns: Option<u64>,
    /// Ordered key/value annotations.
    pub fields: Vec<(String, String)>,
    /// Nested spans.
    pub children: Vec<Span>,
}

impl Span {
    /// A fresh span named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Span {
            name: name.into(),
            ..Span::default()
        }
    }

    /// Appends a `key=value` field (builder style).
    pub fn field(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.add_field(key, value);
        self
    }

    /// Appends a `key=value` field in place.
    pub fn add_field(&mut self, key: impl Into<String>, value: impl fmt::Display) {
        self.fields.push((key.into(), value.to_string()));
    }

    /// Appends a child span.
    pub fn push(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Looks up a field's rendered value on this span.
    pub fn get_field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Depth-first search for the first descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render(
        &self,
        f: &mut fmt::Formatter<'_>,
        prefix: &str,
        last: bool,
        root: bool,
    ) -> fmt::Result {
        if root {
            write!(f, "{}", self.name)?;
        } else {
            let branch = if last { "└─ " } else { "├─ " };
            write!(f, "{prefix}{branch}{}", self.name)?;
        }
        let mut annotations = Vec::new();
        if let Some(ns) = self.duration_ns {
            annotations.push(format_duration(ns));
        }
        for (k, v) in &self.fields {
            annotations.push(format!("{k}={v}"));
        }
        if !annotations.is_empty() {
            write!(f, "  [{}]", annotations.join(" "))?;
        }
        writeln!(f)?;
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        for (i, child) in self.children.iter().enumerate() {
            child.render(f, &child_prefix, i + 1 == self.children.len(), false)?;
        }
        Ok(())
    }
}

/// Renders nanoseconds with a readable unit.
fn format_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A completed per-query trace: the root span plus tree rendering.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The root span (conventionally named after the query).
    pub root: Span,
}

impl QueryTrace {
    /// Wraps a root span.
    pub fn new(root: Span) -> Self {
        QueryTrace { root }
    }

    /// Depth-first search by span name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.root.find(name)
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.render(f, "", true, true)
    }
}

/// Measures one span's wall-clock duration: `let t = SpanTimer::start();`
/// ... `span.duration_ns = Some(t.elapsed_ns());`. One `Instant` pair per
/// phase — never used per entry.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        SpanTimer(Instant::now())
    }

    /// Nanoseconds since `start` (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_rendering_shape() {
        let mut root = Span::new("query: (A ∧ B) top-10");
        root.push(Span::new("plan: FaMin").field("estimated_cost", "1234.0"));
        let mut exec = Span::new("execute");
        exec.duration_ns = Some(2_310_000);
        exec.push(Span::new("engine").field("depth", 420));
        exec.push(Span::new("source[0] \"A\"").field("S", 420).field("R", 37));
        root.push(exec);
        let rendered = QueryTrace::new(root).to_string();
        assert!(rendered.starts_with("query: (A ∧ B) top-10\n"));
        assert!(rendered.contains("├─ plan: FaMin  [estimated_cost=1234.0]\n"));
        assert!(rendered.contains("└─ execute  [2.31ms]\n"));
        assert!(rendered.contains("   ├─ engine  [depth=420]\n"));
        assert!(rendered.contains("   └─ source[0] \"A\"  [S=420 R=37]\n"));
    }

    #[test]
    fn find_walks_depth_first() {
        let mut root = Span::new("root");
        let mut a = Span::new("a");
        a.push(Span::new("target").field("x", 1));
        root.push(a);
        root.push(Span::new("target").field("x", 2));
        let t = QueryTrace::new(root);
        assert_eq!(t.find("target").unwrap().get_field("x"), Some("1"));
        assert!(t.find("missing").is_none());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(12), "12ns");
        assert_eq!(format_duration(1_500), "1.50µs");
        assert_eq!(format_duration(2_310_000), "2.31ms");
        assert_eq!(format_duration(3_000_000_000), "3.00s");
    }
}
