//! The three metric primitives: counter, gauge, log2 latency histogram.
//!
//! All updates are relaxed atomics — these are statistics, not
//! synchronization. Readers observe totals that are exact once the writing
//! threads have quiesced (e.g. after a `join`), which is what the tests
//! pin.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, resident bytes, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per possible `log2` of a `u64` sample,
/// so any value has a bucket and recording never branches on range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram for latency-like `u64` samples
/// (nanoseconds by convention).
///
/// Bucket `i` holds samples whose value needs `i` bits, i.e. values in
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly 0). The upper bound `2^i - 1`
/// is reported for quantiles, so readouts overestimate by at most 2x —
/// the right trade for a registry primitive that must be allocation-free
/// and O(1) to record on the hot path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `value`: the number of significant bits.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`, used as the quantile readout.
    fn bucket_upper(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow, like all counters).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy: bucket counts are read
    /// individually, so a snapshot taken under concurrent writes may be
    /// mid-update, but one taken at quiescence is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile readout.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` = values needing `i` bits).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples across all buckets.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`): the upper bound of the first bucket
    /// whose cumulative count reaches `ceil(q * count)`. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper(i);
            }
        }
        Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Median readout.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile readout.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile readout.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_cover_the_distribution() {
        let h = Histogram::new();
        // 90 fast samples at 100ns, 10 slow at 1_000_000ns.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 10 * 1_000_000);
        // p50 lands in the 100ns bucket [64,127]; p95/p99 in the slow one.
        assert_eq!(s.p50(), 127);
        assert!(s.p95() >= 1_000_000);
        assert!(s.p99() >= 1_000_000);
        // Quantile readout overestimates by < 2x.
        assert!(s.p99() < 2_000_000);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }
}
