//! Unified telemetry for the Garlic middleware: a metrics registry, latency
//! histograms, and per-query execution traces.
//!
//! The paper's Section 5 cost model prices a query in sorted and random
//! accesses, and the rest of the workspace already meters those exactly
//! (`CountingSource`, `CacheStats`, `ShardScanStats`). This crate is the
//! substrate that makes those numbers *queryable at runtime* instead of
//! scattered across per-subsystem structs:
//!
//! - [`Telemetry`] — a `Send + Sync` registry of named [`Counter`]s,
//!   [`Gauge`]s, and [`Histogram`]s. Registration (rare) takes a lock;
//!   every *update* is a single relaxed atomic operation on a pre-resolved
//!   `Arc` handle, so the hot path never touches the registry maps.
//!   Pull-based collectors let components that already keep their own
//!   atomic stats (the block cache, shard scatter-gather) appear in
//!   snapshots with zero added cost on their hot paths.
//! - [`Histogram`] — fixed 64-bucket log2 latency histogram with
//!   p50/p95/p99 readout. No allocation after construction; recording is
//!   two relaxed `fetch_add`s plus a `leading_zeros`.
//! - [`TelemetrySnapshot`] — a point-in-time copy of every metric, with
//!   [Prometheus text](TelemetrySnapshot::to_prometheus) and
//!   [JSON](TelemetrySnapshot::to_json) serializers (hand-rolled; this
//!   crate has no dependencies, in the spirit of `fx.rs`).
//! - [`QueryTrace`] / [`Span`] — a per-query span tree recording the plan
//!   decision, strategy, engine sorted/random phases, per-source Section 5
//!   access counts, and block-cache activity, rendered as an EXPLAIN tree.
//!
//! Everything here is optional to the layers it instruments: components
//! hold an `Option<Arc<Telemetry>>`-style handle (or pre-resolved metric
//! handles) checked once per phase, never per entry, so an unattached
//! system pays one branch per query phase.

mod metrics;
mod registry;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{MetricEntry, MetricValue, Telemetry, TelemetrySnapshot};
pub use trace::{QueryTrace, Span, SpanTimer};
