//! The Fagin–Wimmers weighted aggregation formula \[FW97\].
//!
//! Section 4 of the paper notes that algorithm A0 "applies also when the user
//! can weight the relative importance of the conjuncts (for example, where
//! the user decides that color is twice as important to him as shape), since
//! such weighted conjunctions are also monotone", citing \[FW97\]. This module
//! implements that companion-paper formula so the claim can be exercised.
//!
//! Given a base (unweighted) aggregation `f` applicable at every arity, and
//! weights `θ1 >= θ2 >= ... >= θm >= 0` summing to 1 (paired with arguments
//! `x1..xm`), the Fagin–Wimmers rule is
//!
//! ```text
//! W(x1..xm) = Σ_{i=1..m}  i · (θi − θ_{i+1}) · f(x1, ..., xi)     (θ_{m+1} = 0)
//! ```
//!
//! The coefficients `i·(θi − θ_{i+1})` are non-negative and sum to `Σθi = 1`
//! (telescoping), so `W` is a convex combination of `f` on weight-ordered
//! argument prefixes. Key properties, all tested below:
//!
//! * equal weights recover the unweighted `f`;
//! * a zero weight makes the corresponding argument irrelevant;
//! * `W` is monotone whenever `f` is — which is what A0 needs;
//! * `W` is strict whenever `f` is strict and every weight is positive.

use crate::grade::Grade;
use crate::traits::Aggregation;

/// The Fagin–Wimmers weighting of a base aggregation. See module docs.
///
/// The weight-descending argument order and the telescoping coefficients
/// `i·(θi − θ_{i+1})` depend only on the weights, so both are precomputed
/// at construction — per-call work is one prefix walk, with the prefix
/// buffer borrowable through
/// [`combine_reusing`](Aggregation::combine_reusing).
#[derive(Debug, Clone)]
pub struct FaginWimmers<A> {
    base: A,
    /// Normalised weights in caller argument order (not necessarily sorted).
    weights: Vec<f64>,
    /// Argument indexes sorted by weight, descending (stable, so equal
    /// weights keep caller order — same order the per-call sort produced).
    order: Vec<usize>,
    /// `coeffs[i] = (i+1)·(θ_{(i)} − θ_{(i+1)})` over the sorted weights.
    coeffs: Vec<f64>,
}

impl<A: Aggregation> FaginWimmers<A> {
    /// Creates the weighted aggregation. Weights must be non-negative and
    /// finite with a positive sum; they are normalised to sum to 1.
    ///
    /// # Panics
    /// Panics on an empty weight list, negative/non-finite weights, or an
    /// all-zero weight list.
    pub fn new(base: A, weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let weights: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .expect("weights are finite")
        });
        let m = order.len();
        let coeffs: Vec<f64> = (0..m)
            .map(|i| {
                let theta_i = weights[order[i]];
                let theta_next = if i + 1 < m {
                    weights[order[i + 1]]
                } else {
                    0.0
                };
                (i + 1) as f64 * (theta_i - theta_next)
            })
            .collect();
        FaginWimmers {
            base,
            weights,
            order,
            coeffs,
        }
    }

    /// The normalised weights, in caller argument order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The underlying unweighted aggregation.
    pub fn base(&self) -> &A {
        &self.base
    }
}

impl<A: Aggregation> Aggregation for FaginWimmers<A> {
    fn name(&self) -> String {
        format!("fagin-wimmers({}, {:?})", self.base.name(), self.weights)
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        self.combine_reusing(grades, &mut Vec::new())
    }

    fn combine_reusing(&self, grades: &[Grade], scratch: &mut Vec<Grade>) -> Grade {
        assert_eq!(
            grades.len(),
            self.weights.len(),
            "arity must match the number of weights"
        );
        // Walk the precomputed weight-descending order, growing the prefix
        // in `scratch` — no per-call sort, no per-call allocation.
        scratch.clear();
        let mut total = 0.0;
        for (i, &arg) in self.order.iter().enumerate() {
            scratch.push(grades[arg]);
            let coeff = self.coeffs[i];
            if coeff > 0.0 {
                total += coeff * self.base.combine(scratch).value();
            }
        }
        Grade::clamped(total)
    }

    fn is_monotone(&self) -> bool {
        self.base.is_monotone()
    }

    fn is_strict(&self, arity: usize) -> bool {
        self.base.is_strict(arity) && self.weights.iter().all(|w| *w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterated::min_agg;
    use crate::means::ArithmeticMean;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn equal_weights_recover_base() {
        // With θi = 1/m every telescoping coefficient vanishes except i = m,
        // whose coefficient is m * (1/m) = 1.
        let w = FaginWimmers::new(min_agg(), &[1.0, 1.0, 1.0]);
        let args = [g(0.7), g(0.3), g(0.9)];
        assert!(w.combine(&args).approx_eq(min_agg().combine(&args), 1e-12));
    }

    #[test]
    fn zero_weight_ignores_argument() {
        let w = FaginWimmers::new(min_agg(), &[1.0, 0.0]);
        // Only the first argument matters: W = 1*(1-0)*min(x1) = x1.
        assert_eq!(w.combine(&[g(0.4), Grade::ZERO]), g(0.4));
        assert_eq!(w.combine(&[g(0.4), Grade::ONE]), g(0.4));
    }

    #[test]
    fn twice_as_important_example() {
        // The paper's example: color twice as important as shape.
        // θ = (2/3, 1/3): W = 1*(2/3-1/3)*x_color + 2*(1/3)*min(x_color, x_shape).
        let w = FaginWimmers::new(min_agg(), &[2.0, 1.0]);
        let color = g(0.9);
        let shape = g(0.3);
        let expected = (1.0 / 3.0) * 0.9 + (2.0 / 3.0) * 0.3;
        assert!(w.combine(&[color, shape]).approx_eq(g(expected), 1e-12));
    }

    #[test]
    fn weight_order_does_not_depend_on_argument_position() {
        // Swapping (weight, argument) pairs together is a no-op.
        let w12 = FaginWimmers::new(min_agg(), &[2.0, 1.0]);
        let w21 = FaginWimmers::new(min_agg(), &[1.0, 2.0]);
        assert_eq!(
            w12.combine(&[g(0.9), g(0.3)]),
            w21.combine(&[g(0.3), g(0.9)])
        );
    }

    #[test]
    fn monotone_in_every_argument() {
        let w = FaginWimmers::new(min_agg(), &[3.0, 2.0, 1.0]);
        let grid = crate::grade::grade_grid(5);
        for &a in &grid {
            for &b in &grid {
                for &c in &grid {
                    for &a2 in &grid {
                        if a2 >= a {
                            assert!(w.combine(&[a2, b, c]) >= w.combine(&[a, b, c]));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn strict_iff_positive_weights_and_strict_base() {
        let strict = FaginWimmers::new(min_agg(), &[2.0, 1.0]);
        assert!(strict.is_strict(2));
        assert_eq!(strict.combine(&[Grade::ONE, Grade::ONE]), Grade::ONE);
        assert!(strict.combine(&[Grade::ONE, g(0.99)]) < Grade::ONE);

        let degenerate = FaginWimmers::new(min_agg(), &[1.0, 0.0]);
        assert!(!degenerate.is_strict(2));
        // Witness of non-strictness.
        assert_eq!(degenerate.combine(&[Grade::ONE, Grade::ZERO]), Grade::ONE);
    }

    #[test]
    fn works_with_mean_base_too() {
        let w = FaginWimmers::new(ArithmeticMean, &[1.0, 1.0]);
        assert!(w
            .combine(&[g(0.2), g(0.8)])
            .approx_eq(ArithmeticMean.combine(&[g(0.2), g(0.8)]), 1e-12));
    }

    #[test]
    #[should_panic]
    fn rejects_all_zero_weights() {
        FaginWimmers::new(min_agg(), &[0.0, 0.0]);
    }
}
