//! The [`Grade`] type: a real number in the closed interval `[0, 1]`.
//!
//! Fagin's semantics (Section 2 of the paper) assigns every object a *grade*
//! under every query: `1` is a perfect match, `0` a complete non-match, and
//! traditional (crisp) database predicates only ever produce `0` or `1`.
//! All aggregation functions in this workspace consume and produce `Grade`s,
//! so the `[0, 1]`/non-NaN invariant is enforced once, here, at construction.

use std::fmt;

/// Error returned when constructing a [`Grade`] from an invalid `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradeError {
    /// The value was NaN.
    NotANumber,
    /// The value was outside `[0, 1]` (payload is the offending value).
    OutOfRange(f64),
}

impl fmt::Display for GradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradeError::NotANumber => write!(f, "grade must not be NaN"),
            GradeError::OutOfRange(v) => write!(f, "grade {v} outside [0, 1]"),
        }
    }
}

impl std::error::Error for GradeError {}

/// A fuzzy grade: an `f64` guaranteed to lie in `[0, 1]` and never NaN.
///
/// Because NaN is excluded, `Grade` implements [`Ord`] and can be sorted,
/// compared, and used as a max/min key directly.
///
/// ```
/// use garlic_agg::Grade;
/// let g = Grade::new(0.75).unwrap();
/// assert!(g > Grade::ZERO && g < Grade::ONE);
/// assert_eq!(g.complement(), Grade::new(0.25).unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Grade(f64);

impl Grade {
    /// Grade `0`: the query is (fully) false about the object.
    pub const ZERO: Grade = Grade(0.0);
    /// Grade `1`: a perfect match.
    pub const ONE: Grade = Grade(1.0);
    /// Grade `1/2`: the fixed point of the standard negation, central to the
    /// hard query `Q AND NOT Q` of Section 7.
    pub const HALF: Grade = Grade(0.5);

    /// Creates a grade, rejecting NaN and values outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Grade, GradeError> {
        if value.is_nan() {
            Err(GradeError::NotANumber)
        } else if !(0.0..=1.0).contains(&value) {
            Err(GradeError::OutOfRange(value))
        } else {
            Ok(Grade(value))
        }
    }

    /// Creates a grade, clamping out-of-range values into `[0, 1]`.
    ///
    /// NaN clamps to `0` (the conservative "no information" grade).
    pub fn clamped(value: f64) -> Grade {
        if value.is_nan() {
            Grade::ZERO
        } else {
            Grade(value.clamp(0.0, 1.0))
        }
    }

    /// The underlying `f64` in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The standard fuzzy negation `1 - g` (Zadeh's negation rule).
    #[inline]
    pub fn complement(self) -> Grade {
        Grade(1.0 - self.0)
    }

    /// `true` iff the grade is exactly `0` or exactly `1`, i.e. the grade a
    /// traditional (non-fuzzy) predicate would produce.
    #[inline]
    pub fn is_crisp(self) -> bool {
        self.0 == 0.0 || self.0 == 1.0
    }

    /// Pointwise minimum (the standard fuzzy conjunction rule).
    #[inline]
    pub fn min(self, other: Grade) -> Grade {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Pointwise maximum (the standard fuzzy disjunction rule).
    #[inline]
    pub fn max(self, other: Grade) -> Grade {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Approximate equality within `eps`, for testing algebraic identities
    /// over the floating-point t-norm zoo.
    pub fn approx_eq(self, other: Grade, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }

    /// Converts a boolean (a crisp predicate result) into a grade.
    #[inline]
    pub fn from_bool(b: bool) -> Grade {
        if b {
            Grade::ONE
        } else {
            Grade::ZERO
        }
    }
}

impl Eq for Grade {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Grade {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: the constructor invariant excludes NaN.
        self.partial_cmp(other).expect("Grade is never NaN")
    }
}

impl fmt::Debug for Grade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grade({})", self.0)
    }
}

impl fmt::Display for Grade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl TryFrom<f64> for Grade {
    type Error = GradeError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Grade::new(value)
    }
}

impl From<bool> for Grade {
    fn from(b: bool) -> Self {
        Grade::from_bool(b)
    }
}

/// An evenly spaced grid of grades covering `[0, 1]` inclusive, used by the
/// axiom checkers and tests. `steps` is the number of intervals, so the grid
/// has `steps + 1` points; `grade_grid(4)` is `[0, 0.25, 0.5, 0.75, 1]`.
pub fn grade_grid(steps: usize) -> Vec<Grade> {
    assert!(steps >= 1, "grid needs at least one interval");
    (0..=steps)
        .map(|i| Grade::clamped(i as f64 / steps as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_unit_interval() {
        assert_eq!(Grade::new(0.0).unwrap(), Grade::ZERO);
        assert_eq!(Grade::new(1.0).unwrap(), Grade::ONE);
        assert_eq!(Grade::new(0.5).unwrap(), Grade::HALF);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(Grade::new(-0.1), Err(GradeError::OutOfRange(-0.1)));
        assert_eq!(Grade::new(1.1), Err(GradeError::OutOfRange(1.1)));
        assert_eq!(Grade::new(f64::NAN), Err(GradeError::NotANumber));
        assert_eq!(
            Grade::new(f64::INFINITY),
            Err(GradeError::OutOfRange(f64::INFINITY))
        );
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Grade::clamped(-3.0), Grade::ZERO);
        assert_eq!(Grade::clamped(7.0), Grade::ONE);
        assert_eq!(Grade::clamped(f64::NAN), Grade::ZERO);
        assert_eq!(Grade::clamped(0.25).value(), 0.25);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Grade::ONE, Grade::ZERO, Grade::HALF];
        v.sort();
        assert_eq!(v, vec![Grade::ZERO, Grade::HALF, Grade::ONE]);
    }

    #[test]
    fn complement_is_involutive() {
        for g in grade_grid(20) {
            assert!(g.complement().complement().approx_eq(g, 1e-12));
        }
    }

    #[test]
    fn crispness() {
        assert!(Grade::ZERO.is_crisp());
        assert!(Grade::ONE.is_crisp());
        assert!(!Grade::HALF.is_crisp());
    }

    #[test]
    fn min_max_agree_with_ord() {
        let a = Grade::new(0.3).unwrap();
        let b = Grade::new(0.8).unwrap();
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(a), a);
    }

    #[test]
    fn from_bool_is_crisp() {
        assert_eq!(Grade::from_bool(true), Grade::ONE);
        assert_eq!(Grade::from_bool(false), Grade::ZERO);
    }

    #[test]
    fn grid_endpoints() {
        let g = grade_grid(4);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], Grade::ZERO);
        assert_eq!(g[4], Grade::ONE);
        assert_eq!(g[2], Grade::HALF);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Grade::HALF), "0.5000");
    }
}
