//! Order-statistic aggregations and identity (13) of the paper.
//!
//! Remark 6.1 evaluates the 3-ary median through the identity
//!
//! ```text
//! median(a1,a2,a3) = max{ min{a1,a2}, min{a1,a3}, min{a2,a3} }      (13)
//! ```
//!
//! which generalises: the j-th largest of m values equals the maximum over
//! all j-element subsets of the minimum within the subset. That identity is
//! what lets the median be computed in O(√(Nk)) by running algorithm A0'
//! once per subset — see `garlic_core::algorithms::order_stat`.

use crate::grade::Grade;
use crate::traits::Aggregation;

/// The j-th largest argument (1-based): `j = 1` is max, `j = m` is min,
/// `j = ⌈m/2⌉` is the (upper) median for odd `m`.
///
/// Monotone always; strict only when `j = m` (i.e. when it degenerates to
/// min) — which is why Remark 6.1's median escapes the lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KthLargest {
    j: usize,
}

impl KthLargest {
    /// Creates the aggregation selecting the j-th largest argument
    /// (1-based).
    ///
    /// # Panics
    /// Panics if `j == 0`.
    pub fn new(j: usize) -> Self {
        assert!(j >= 1, "order statistic index is 1-based");
        KthLargest { j }
    }

    /// The median order statistic for arity `m`: the ⌈m/2⌉-th largest.
    /// For odd `m` this is the textbook median; for even `m` it is the lower
    /// median, matching [`crate::means::MedianAgg`].
    pub fn median_for_arity(m: usize) -> Self {
        assert!(m >= 1);
        KthLargest { j: m / 2 + 1 }
    }

    /// The 1-based index `j`.
    pub fn j(&self) -> usize {
        self.j
    }
}

impl Aggregation for KthLargest {
    fn name(&self) -> String {
        format!("{}-th-largest", self.j)
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        self.combine_reusing(grades, &mut Vec::new())
    }

    fn combine_reusing(&self, grades: &[Grade], scratch: &mut Vec<Grade>) -> Grade {
        assert!(
            self.j <= grades.len(),
            "{}-th largest of only {} arguments",
            self.j,
            grades.len()
        );
        scratch.clear();
        scratch.extend_from_slice(grades);
        // Select, don't sort: the j-th largest is the (j-1)-th index of the
        // descending order.
        let (_, jth, _) = scratch.select_nth_unstable_by(self.j - 1, |a, b| b.cmp(a));
        *jth
    }

    fn is_strict(&self, arity: usize) -> bool {
        self.j == arity
    }

    fn zero_annihilates(&self, arity: usize) -> bool {
        // Only min (j = m) is forced to zero by a single zero argument.
        self.j == arity
    }
}

/// Evaluates the j-th largest via identity (13): the max over all j-element
/// subsets of the min within the subset. Exponential in general — this is
/// the *specification*, used in tests to validate both [`KthLargest`] and
/// the subset-decomposition algorithm in `garlic-core`.
pub fn kth_largest_via_subsets(j: usize, grades: &[Grade]) -> Grade {
    assert!(j >= 1 && j <= grades.len());
    let mut best = Grade::ZERO;
    for subset in subsets_of_size(grades.len(), j) {
        let min_in_subset = subset
            .iter()
            .map(|&i| grades[i])
            .min()
            .expect("subset is non-empty");
        best = best.max(min_in_subset);
    }
    best
}

/// All index subsets of `{0, .., n-1}` with exactly `size` elements, in
/// lexicographic order. Used by the order-statistic algorithm decomposition.
pub fn subsets_of_size(n: usize, size: usize) -> Vec<Vec<usize>> {
    assert!(size <= n, "subset size {size} exceeds ground set {n}");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn recurse(
        n: usize,
        size: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        // Prune: not enough elements left to finish the subset.
        let needed = size - current.len();
        for i in start..=(n - needed) {
            current.push(i);
            recurse(n, size, i + 1, current, out);
            current.pop();
        }
    }
    if size == 0 {
        out.push(Vec::new());
    } else {
        recurse(n, size, 0, &mut current, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::grade_grid;
    use crate::means::MedianAgg;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn kth_largest_selects_correctly() {
        let v = [g(0.2), g(0.9), g(0.5)];
        assert_eq!(KthLargest::new(1).combine(&v), g(0.9));
        assert_eq!(KthLargest::new(2).combine(&v), g(0.5));
        assert_eq!(KthLargest::new(3).combine(&v), g(0.2));
    }

    #[test]
    fn median_for_arity_matches_median_agg() {
        let cases: Vec<Vec<Grade>> = vec![
            vec![g(0.3)],
            vec![g(0.3), g(0.7), g(0.5)],
            vec![g(0.1), g(0.2), g(0.9), g(0.4), g(0.6)],
        ];
        for c in cases {
            let med = KthLargest::median_for_arity(c.len());
            assert_eq!(med.combine(&c), MedianAgg.combine(&c), "arity {}", c.len());
        }
    }

    #[test]
    fn strictness_only_at_min() {
        assert!(!KthLargest::new(1).is_strict(3)); // max
        assert!(!KthLargest::new(2).is_strict(3)); // median
        assert!(KthLargest::new(3).is_strict(3)); // min
    }

    #[test]
    fn identity_13_for_median_of_three() {
        // The paper's stated identity, checked exhaustively on a grid.
        for a in grade_grid(6) {
            for b in grade_grid(6) {
                for c in grade_grid(6) {
                    let v = [a, b, c];
                    assert_eq!(
                        kth_largest_via_subsets(2, &v),
                        KthLargest::new(2).combine(&v),
                        "identity (13) fails at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn identity_generalises_to_all_j() {
        let v = [g(0.15), g(0.95), g(0.4), g(0.7), g(0.55)];
        for j in 1..=v.len() {
            assert_eq!(
                kth_largest_via_subsets(j, &v),
                KthLargest::new(j).combine(&v),
                "j = {j}"
            );
        }
    }

    #[test]
    fn subsets_counting() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(5, 3).len(), 10);
        assert_eq!(subsets_of_size(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets_of_size(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn subsets_are_sorted_and_unique() {
        let subs = subsets_of_size(6, 3);
        for s in &subs {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
        let mut dedup = subs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), subs.len());
    }
}
