//! Mean-style aggregation functions.
//!
//! Section 3 notes that Thole, Zimmermann and Zysno \[TZZ79\] found weighted
//! and unweighted arithmetic/geometric means to perform well empirically,
//! even though they are *not* t-norms (the arithmetic mean of 0 and 1 is 1/2,
//! violating ∧-conservation). They are still monotone and strict, so both of
//! the paper's bounds apply to them — exercised by experiment E10.
//!
//! Remark 6.1 adds two aggregations that are monotone but **not** strict,
//! for which the lower bound *fails*: the median and the "gymnastics"
//! trimmed mean (drop the top and bottom scores, average the rest).

use crate::grade::Grade;
use crate::traits::Aggregation;

/// The arithmetic mean `(x1 + ... + xm) / m`. Monotone and strict, but not a
/// t-norm (no ∧-conservation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ArithmeticMean;

impl Aggregation for ArithmeticMean {
    fn name(&self) -> String {
        "arithmetic-mean".to_owned()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        if grades.is_empty() {
            return Grade::ONE;
        }
        let sum: f64 = grades.iter().map(|g| g.value()).sum();
        Grade::clamped(sum / grades.len() as f64)
    }

    fn is_strict(&self, _arity: usize) -> bool {
        true
    }
}

/// The geometric mean `(x1 * ... * xm)^(1/m)`. Monotone and strict.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeometricMean;

impl Aggregation for GeometricMean {
    fn name(&self) -> String {
        "geometric-mean".to_owned()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        if grades.is_empty() {
            return Grade::ONE;
        }
        let product: f64 = grades.iter().map(|g| g.value()).product();
        Grade::clamped(product.powf(1.0 / grades.len() as f64))
    }

    fn is_strict(&self, _arity: usize) -> bool {
        true
    }

    fn zero_annihilates(&self, _arity: usize) -> bool {
        // A zero factor zeroes the product, hence the root.
        true
    }
}

/// A weighted arithmetic mean with fixed positive weights (normalised at
/// construction). Strict because every argument carries positive weight.
#[derive(Debug, Clone)]
pub struct WeightedArithmeticMean {
    weights: Vec<f64>,
}

impl WeightedArithmeticMean {
    /// Creates the mean from positive weights; they are normalised to sum 1.
    ///
    /// # Panics
    /// Panics if `weights` is empty or any weight is not strictly positive
    /// and finite.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        let total: f64 = weights.iter().sum();
        WeightedArithmeticMean {
            weights: weights.iter().map(|w| w / total).collect(),
        }
    }

    /// The normalised weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Aggregation for WeightedArithmeticMean {
    fn name(&self) -> String {
        format!("weighted-arithmetic-mean({:?})", self.weights)
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        assert_eq!(
            grades.len(),
            self.weights.len(),
            "arity must match the number of weights"
        );
        let sum: f64 = grades
            .iter()
            .zip(&self.weights)
            .map(|(g, w)| g.value() * w)
            .sum();
        Grade::clamped(sum)
    }

    fn is_strict(&self, _arity: usize) -> bool {
        true
    }
}

/// The median of the arguments (lower median for even arity). Monotone but
/// **not strict** — Remark 6.1's canonical example of an aggregation where
/// the Ω(N^((m-1)/m) k^(1/m)) lower bound fails, because the median can be 1
/// with a minority of arguments below 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianAgg;

impl Aggregation for MedianAgg {
    fn name(&self) -> String {
        "median".to_owned()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        self.combine_reusing(grades, &mut Vec::new())
    }

    fn combine_reusing(&self, grades: &[Grade], scratch: &mut Vec<Grade>) -> Grade {
        if grades.is_empty() {
            return Grade::ONE;
        }
        scratch.clear();
        scratch.extend_from_slice(grades);
        // Lower median: for m = 2j-1 or 2j this picks the j-th smallest,
        // i.e. the ⌈m/2⌉-th largest — matching identity (13) of the paper.
        let mid = (scratch.len() - 1) / 2;
        let (_, median, _) = scratch.select_nth_unstable(mid);
        *median
    }

    fn is_strict(&self, arity: usize) -> bool {
        arity <= 1
    }
}

/// The gymnastics aggregation of Remark 6.1: drop one highest and one lowest
/// score, average the rest. With three judges this *is* the median. Monotone
/// but not strict.
#[derive(Debug, Clone, Copy, Default)]
pub struct GymnasticsTrimmedMean;

impl Aggregation for GymnasticsTrimmedMean {
    fn name(&self) -> String {
        "gymnastics-trimmed-mean".to_owned()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        self.combine_reusing(grades, &mut Vec::new())
    }

    fn combine_reusing(&self, grades: &[Grade], scratch: &mut Vec<Grade>) -> Grade {
        assert!(
            grades.len() >= 3,
            "trimmed mean needs at least three judges"
        );
        scratch.clear();
        scratch.extend_from_slice(grades);
        scratch.sort();
        let inner = &scratch[1..scratch.len() - 1];
        let sum: f64 = inner.iter().map(|g| g.value()).sum();
        Grade::clamped(sum / inner.len() as f64)
    }

    fn is_strict(&self, _arity: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn arithmetic_mean_violates_conservation() {
        // The paper's own example: mean(0, 1) = 1/2, not 0.
        assert_eq!(
            ArithmeticMean.combine(&[Grade::ZERO, Grade::ONE]),
            Grade::HALF
        );
    }

    #[test]
    fn arithmetic_mean_is_strict() {
        assert_eq!(
            ArithmeticMean.combine(&[Grade::ONE, Grade::ONE]),
            Grade::ONE
        );
        assert!(ArithmeticMean.combine(&[Grade::ONE, g(0.999)]) < Grade::ONE);
    }

    #[test]
    fn geometric_mean_values() {
        assert!(GeometricMean
            .combine(&[g(0.25), Grade::ONE])
            .approx_eq(g(0.5), 1e-12));
        assert_eq!(
            GeometricMean.combine(&[Grade::ZERO, Grade::ONE]),
            Grade::ZERO
        );
    }

    #[test]
    fn weighted_mean_normalises() {
        let w = WeightedArithmeticMean::new(&[2.0, 1.0]);
        // color twice as important as shape (the paper's §4 example).
        assert!(w
            .combine(&[g(0.9), g(0.3)])
            .approx_eq(g((2.0 * 0.9 + 0.3) / 3.0), 1e-12));
    }

    #[test]
    #[should_panic]
    fn weighted_mean_rejects_arity_mismatch() {
        WeightedArithmeticMean::new(&[1.0, 1.0]).combine(&[Grade::ONE]);
    }

    #[test]
    #[should_panic]
    fn weighted_mean_rejects_nonpositive_weights() {
        WeightedArithmeticMean::new(&[1.0, 0.0]);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(MedianAgg.combine(&[g(0.1), g(0.9), g(0.5)]), g(0.5));
        // Lower median for even arity.
        assert_eq!(MedianAgg.combine(&[g(0.1), g(0.9), g(0.5), g(0.7)]), g(0.5));
    }

    #[test]
    fn median_is_not_strict() {
        // Median(1, 1, 0) = 1 even though one argument is 0.
        assert_eq!(
            MedianAgg.combine(&[Grade::ONE, Grade::ONE, Grade::ZERO]),
            Grade::ONE
        );
        assert!(!MedianAgg.is_strict(3));
    }

    #[test]
    fn gymnastics_with_three_judges_is_median() {
        let scores = [g(0.2), g(0.8), g(0.6)];
        assert_eq!(
            GymnasticsTrimmedMean.combine(&scores),
            MedianAgg.combine(&scores)
        );
    }

    #[test]
    fn gymnastics_with_five_judges() {
        let scores = [g(0.0), g(0.4), g(0.6), g(0.8), Grade::ONE];
        assert!(GymnasticsTrimmedMean
            .combine(&scores)
            .approx_eq(g(0.6), 1e-12));
    }

    #[test]
    fn gymnastics_is_not_strict() {
        assert_eq!(
            GymnasticsTrimmedMean.combine(&[Grade::ZERO, Grade::ONE, Grade::ONE, Grade::ONE]),
            Grade::ONE
        );
    }
}
