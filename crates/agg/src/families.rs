//! Parametric t-norm/t-conorm families.
//!
//! The Section 3 catalogue lists individual norms; the fuzzy-logic
//! literature the paper draws on (\[DP80\], \[Mi89\], Zimmermann \[Zi96\])
//! organises them into *families* sweeping a parameter between the drastic
//! product and min. Three classics are implemented here — every member is a
//! genuine t-norm, so Theorems 5.3/6.4 cover all of them (the point of
//! experiment E10's robustness claim):
//!
//! * **Yager**: `t_p(x,y) = max(0, 1 − ((1−x)^p + (1−y)^p)^(1/p))`;
//!   `p = 1` is bounded difference, `p → ∞` tends to min.
//! * **Hamacher**: `t_γ(x,y) = xy / (γ + (1−γ)(x + y − xy))`;
//!   `γ = 1` is the algebraic product, `γ = 0` the Hamacher product.
//! * **Frank**: `t_s(x,y) = log_s(1 + (s^x − 1)(s^y − 1)/(s − 1))`;
//!   `s → 1` tends to the algebraic product.

use crate::grade::Grade;
use crate::traits::{TCoNorm, TNorm};

/// The Yager t-norm with parameter `p > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YagerTNorm {
    p: f64,
}

impl YagerTNorm {
    /// Creates the norm; `p` must be positive and finite.
    ///
    /// # Panics
    /// Panics otherwise.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p.is_finite(), "Yager family needs p > 0");
        YagerTNorm { p }
    }

    /// The parameter.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl TNorm for YagerTNorm {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        let (a, b) = (1.0 - x.value(), 1.0 - y.value());
        Grade::clamped(1.0 - (a.powf(self.p) + b.powf(self.p)).powf(1.0 / self.p))
    }
    fn name(&self) -> String {
        format!("yager-tnorm(p={})", self.p)
    }
}

/// The Yager t-conorm with parameter `p > 0` (the standard dual).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YagerTCoNorm {
    p: f64,
}

impl YagerTCoNorm {
    /// Creates the co-norm; `p` must be positive and finite.
    ///
    /// # Panics
    /// Panics otherwise.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p.is_finite(), "Yager family needs p > 0");
        YagerTCoNorm { p }
    }
}

impl TCoNorm for YagerTCoNorm {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        Grade::clamped((x.value().powf(self.p) + y.value().powf(self.p)).powf(1.0 / self.p))
    }
    fn name(&self) -> String {
        format!("yager-tconorm(p={})", self.p)
    }
}

/// The Hamacher family with parameter `γ >= 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HamacherFamily {
    gamma: f64,
}

impl HamacherFamily {
    /// Creates the norm; `γ` must be non-negative and finite.
    ///
    /// # Panics
    /// Panics otherwise.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma >= 0.0 && gamma.is_finite(),
            "Hamacher family needs gamma >= 0"
        );
        HamacherFamily { gamma }
    }
}

impl TNorm for HamacherFamily {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        let (x, y) = (x.value(), y.value());
        let denom = self.gamma + (1.0 - self.gamma) * (x + y - x * y);
        if denom == 0.0 {
            Grade::ZERO
        } else {
            Grade::clamped(x * y / denom)
        }
    }
    fn name(&self) -> String {
        format!("hamacher-family(γ={})", self.gamma)
    }
}

/// The Frank t-norm with parameter `s > 0`, `s ≠ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrankTNorm {
    s: f64,
}

impl FrankTNorm {
    /// Creates the norm; `s` must be positive, finite, and not 1.
    ///
    /// # Panics
    /// Panics otherwise.
    pub fn new(s: f64) -> Self {
        assert!(
            s > 0.0 && s.is_finite() && (s - 1.0).abs() > 1e-12,
            "Frank family needs s > 0, s != 1"
        );
        FrankTNorm { s }
    }
}

impl TNorm for FrankTNorm {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        let s = self.s;
        let num = (s.powf(x.value()) - 1.0) * (s.powf(y.value()) - 1.0);
        Grade::clamped((1.0 + num / (s - 1.0)).ln() / s.ln())
    }
    fn name(&self) -> String {
        format!("frank-tnorm(s={})", self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::{check_tconorm_axioms, check_tnorm_axioms};
    use crate::duality::DualCoNorm;
    use crate::grade::grade_grid;
    use crate::tnorms::{AlgebraicProduct, BoundedDifference, HamacherProduct, Minimum};

    #[test]
    fn yager_members_satisfy_tnorm_axioms() {
        for p in [0.5, 1.0, 2.0, 5.0] {
            check_tnorm_axioms(&YagerTNorm::new(p), 6).unwrap_or_else(|e| panic!("p = {p}: {e}"));
        }
    }

    #[test]
    fn yager_conorm_members_satisfy_axioms() {
        for p in [0.5, 1.0, 2.0, 5.0] {
            check_tconorm_axioms(&YagerTCoNorm::new(p), 6)
                .unwrap_or_else(|e| panic!("p = {p}: {e}"));
        }
    }

    #[test]
    fn hamacher_members_satisfy_tnorm_axioms() {
        for gamma in [0.0, 0.5, 1.0, 2.0, 10.0] {
            check_tnorm_axioms(&HamacherFamily::new(gamma), 6)
                .unwrap_or_else(|e| panic!("gamma = {gamma}: {e}"));
        }
    }

    #[test]
    fn frank_members_satisfy_tnorm_axioms() {
        for s in [0.1, 0.5, 2.0, 10.0] {
            check_tnorm_axioms(&FrankTNorm::new(s), 6).unwrap_or_else(|e| panic!("s = {s}: {e}"));
        }
    }

    #[test]
    fn yager_p1_is_bounded_difference() {
        let y = YagerTNorm::new(1.0);
        for a in grade_grid(10) {
            for b in grade_grid(10) {
                assert!(y.t(a, b).approx_eq(BoundedDifference.t(a, b), 1e-9));
            }
        }
    }

    #[test]
    fn yager_large_p_approaches_min() {
        let y = YagerTNorm::new(64.0);
        for a in grade_grid(8) {
            for b in grade_grid(8) {
                assert!(
                    y.t(a, b).approx_eq(Minimum.t(a, b), 0.05),
                    "p=64 at ({a},{b}): {} vs {}",
                    y.t(a, b),
                    Minimum.t(a, b)
                );
            }
        }
    }

    #[test]
    fn hamacher_gamma_endpoints() {
        let h0 = HamacherFamily::new(0.0);
        let h1 = HamacherFamily::new(1.0);
        for a in grade_grid(10) {
            for b in grade_grid(10) {
                assert!(h0.t(a, b).approx_eq(HamacherProduct.t(a, b), 1e-9));
                assert!(h1.t(a, b).approx_eq(AlgebraicProduct.t(a, b), 1e-9));
            }
        }
    }

    #[test]
    fn frank_near_one_approaches_product() {
        let f = FrankTNorm::new(1.0001);
        for a in grade_grid(8) {
            for b in grade_grid(8) {
                assert!(
                    f.t(a, b).approx_eq(AlgebraicProduct.t(a, b), 1e-3),
                    "at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn yager_conorm_is_standard_dual_of_yager_tnorm() {
        use crate::traits::TCoNorm as _;
        for p in [0.5, 2.0, 4.0] {
            let dual = DualCoNorm::standard(YagerTNorm::new(p));
            let direct = YagerTCoNorm::new(p);
            for a in grade_grid(8) {
                for b in grade_grid(8) {
                    assert!(direct.s(a, b).approx_eq(dual.s(a, b), 1e-9), "p = {p}");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn yager_rejects_nonpositive_p() {
        YagerTNorm::new(0.0);
    }

    #[test]
    #[should_panic]
    fn frank_rejects_s_equal_one() {
        FrankTNorm::new(1.0);
    }
}
