//! The triangular norms catalogued in Section 3 of the paper.
//!
//! Every type here satisfies the four t-norm axioms (∧-conservation,
//! monotonicity, commutativity, associativity) and is therefore sandwiched
//! between [`DrasticProduct`] and [`Minimum`] (\[DP80\]); iterating any of them
//! yields a *monotone and strict* m-ary aggregation, which is exactly the
//! class covered by both the upper bound (Theorem 5.3) and the lower bound
//! (Theorem 6.4).

use crate::grade::Grade;
use crate::traits::TNorm;

/// `min(x, y)` — the standard fuzzy conjunction \[Za65\]; the unique t-norm
/// that preserves logical equivalence of ∧/∨ queries (Theorem 3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Minimum;

impl TNorm for Minimum {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        x.min(y)
    }
    fn name(&self) -> String {
        "min".to_owned()
    }
}

/// The drastic product: `min(x,y)` if `max(x,y) = 1`, else `0`.
/// The pointwise *smallest* t-norm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrasticProduct;

impl TNorm for DrasticProduct {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        if x == Grade::ONE || y == Grade::ONE {
            x.min(y)
        } else {
            Grade::ZERO
        }
    }
    fn name(&self) -> String {
        "drastic-product".to_owned()
    }
}

/// Bounded difference (Łukasiewicz t-norm): `max(0, x + y - 1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundedDifference;

impl TNorm for BoundedDifference {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        Grade::clamped(x.value() + y.value() - 1.0)
    }
    fn name(&self) -> String {
        "bounded-difference".to_owned()
    }
}

/// Einstein product: `xy / (2 - (x + y - xy))`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EinsteinProduct;

impl TNorm for EinsteinProduct {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        let (x, y) = (x.value(), y.value());
        Grade::clamped(x * y / (2.0 - (x + y - x * y)))
    }
    fn name(&self) -> String {
        "einstein-product".to_owned()
    }
}

/// Algebraic product: `x * y` (probabilistic conjunction of independent
/// events; found empirically competitive by Thole–Zimmermann–Zysno \[TZZ79\]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgebraicProduct;

impl TNorm for AlgebraicProduct {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        Grade::clamped(x.value() * y.value())
    }
    fn name(&self) -> String {
        "algebraic-product".to_owned()
    }
}

/// Hamacher product: `xy / (x + y - xy)`, with `t(0,0) = 0` by continuity
/// convention (the formula is 0/0 there).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HamacherProduct;

impl TNorm for HamacherProduct {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        let (x, y) = (x.value(), y.value());
        let denom = x + y - x * y;
        if denom == 0.0 {
            Grade::ZERO
        } else {
            Grade::clamped(x * y / denom)
        }
    }
    fn name(&self) -> String {
        "hamacher-product".to_owned()
    }
}

/// All t-norms from the paper's Section 3 list, boxed for table-driven tests
/// and experiment sweeps.
pub fn all_tnorms() -> Vec<Box<dyn TNorm>> {
    vec![
        Box::new(Minimum),
        Box::new(DrasticProduct),
        Box::new(BoundedDifference),
        Box::new(EinsteinProduct),
        Box::new(AlgebraicProduct),
        Box::new(HamacherProduct),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::grade_grid;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn min_basic_values() {
        assert_eq!(Minimum.t(g(0.3), g(0.8)), g(0.3));
        assert_eq!(Minimum.t(Grade::ONE, g(0.8)), g(0.8));
    }

    #[test]
    fn drastic_is_zero_off_boundary() {
        assert_eq!(DrasticProduct.t(g(0.9), g(0.9)), Grade::ZERO);
        assert_eq!(DrasticProduct.t(Grade::ONE, g(0.9)), g(0.9));
        assert_eq!(DrasticProduct.t(g(0.9), Grade::ONE), g(0.9));
    }

    #[test]
    fn bounded_difference_values() {
        assert_eq!(BoundedDifference.t(g(0.7), g(0.7)), g(0.7 + 0.7 - 1.0));
        assert_eq!(BoundedDifference.t(g(0.3), g(0.3)), Grade::ZERO);
    }

    #[test]
    fn einstein_product_midpoint() {
        // 0.25 / (2 - 0.75) = 0.2
        assert!(EinsteinProduct
            .t(Grade::HALF, Grade::HALF)
            .approx_eq(g(0.2), 1e-12));
    }

    #[test]
    fn algebraic_product_values() {
        assert!(AlgebraicProduct
            .t(Grade::HALF, Grade::HALF)
            .approx_eq(g(0.25), 1e-12));
    }

    #[test]
    fn hamacher_product_values() {
        // 0.25 / 0.75 = 1/3
        assert!(HamacherProduct
            .t(Grade::HALF, Grade::HALF)
            .approx_eq(g(1.0 / 3.0), 1e-12));
        assert_eq!(HamacherProduct.t(Grade::ZERO, Grade::ZERO), Grade::ZERO);
    }

    #[test]
    fn all_are_sandwiched_between_drastic_and_min() {
        // Strictness follows from this sandwich (Section 3, \[DP80\]).
        let grid = grade_grid(10);
        for tn in all_tnorms() {
            for &x in &grid {
                for &y in &grid {
                    // Tolerance for floating-point rounding in the rational
                    // norms (Einstein, Hamacher, algebraic).
                    let v = tn.t(x, y).value();
                    assert!(
                        DrasticProduct.t(x, y).value() - 1e-9 <= v
                            && v <= Minimum.t(x, y).value() + 1e-9,
                        "{} violates drastic <= t <= min at ({x}, {y})",
                        tn.name()
                    );
                }
            }
        }
    }

    #[test]
    fn conservation_on_all() {
        for tn in all_tnorms() {
            assert_eq!(tn.t(Grade::ZERO, Grade::ZERO), Grade::ZERO, "{}", tn.name());
            for v in grade_grid(10) {
                assert!(
                    tn.t(v, Grade::ONE).approx_eq(v, 1e-12),
                    "{} fails t(x,1)=x",
                    tn.name()
                );
                assert!(
                    tn.t(Grade::ONE, v).approx_eq(v, 1e-12),
                    "{} fails t(1,x)=x",
                    tn.name()
                );
            }
        }
    }
}
