//! Building m-ary aggregations from 2-ary norms by iteration.
//!
//! Section 3: "in practice an m-ary conjunction is almost always evaluated by
//! using an associative 2-ary function that is iterated", and *every* m-ary
//! aggregation obtained by iterating a triangular norm is monotone and strict
//! (the two properties the paper's theorems need).

use crate::grade::Grade;
use crate::traits::{Aggregation, TCoNorm, TNorm};

/// The m-ary aggregation obtained by folding a triangular norm:
/// `t(t(...t(x1, x2)..., x_{m-1}), x_m)`.
///
/// Its identity on the empty argument list is `1` (the t-norm unit), so an
/// empty conjunction is vacuously true, matching propositional logic.
#[derive(Debug, Clone, Copy, Default)]
pub struct IteratedTNorm<T>(pub T);

impl<T: TNorm> Aggregation for IteratedTNorm<T> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        grades
            .iter()
            .copied()
            .fold(Grade::ONE, |acc, g| self.0.t(acc, g))
    }

    fn is_strict(&self, _arity: usize) -> bool {
        // Every iterated t-norm is strict: t is sandwiched between the
        // drastic product and min \[DP80\], both of which hit 1 only at
        // (1, ..., 1).
        true
    }

    fn zero_annihilates(&self, _arity: usize) -> bool {
        // t(x, 0) <= min(x, 0) = 0 by the \[DP80\] sandwich.
        true
    }
}

/// The m-ary aggregation obtained by folding a triangular co-norm:
/// `s(s(...s(x1, x2)...), x_m)`. Identity on the empty list is `0`
/// (an empty disjunction is false).
#[derive(Debug, Clone, Copy, Default)]
pub struct IteratedTCoNorm<S>(pub S);

impl<S: TCoNorm> Aggregation for IteratedTCoNorm<S> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn combine(&self, grades: &[Grade]) -> Grade {
        grades
            .iter()
            .copied()
            .fold(Grade::ZERO, |acc, g| self.0.s(acc, g))
    }

    fn is_strict(&self, arity: usize) -> bool {
        // s(x1..xm) = 1 whenever any x_i = 1, so a co-norm is strict only in
        // the degenerate unary case. (This is why the Section 6 lower bound
        // does not apply to disjunctions — see algorithm B0.)
        arity <= 1
    }
}

/// The standard fuzzy conjunction `min(x1, ..., xm)` as an m-ary aggregation.
pub fn min_agg() -> IteratedTNorm<crate::tnorms::Minimum> {
    IteratedTNorm(crate::tnorms::Minimum)
}

/// The standard fuzzy disjunction `max(x1, ..., xm)` as an m-ary aggregation.
pub fn max_agg() -> IteratedTCoNorm<crate::tconorms::Maximum> {
    IteratedTCoNorm(crate::tconorms::Maximum)
}

/// The algebraic product `x1 * ... * xm` as an m-ary aggregation.
pub fn product_agg() -> IteratedTNorm<crate::tnorms::AlgebraicProduct> {
    IteratedTNorm(crate::tnorms::AlgebraicProduct)
}

/// Every iterated t-norm from the paper's Section 3 list, boxed, for
/// sweep-style tests and the robustness experiment (E10).
pub fn all_iterated_tnorms() -> Vec<Box<dyn Aggregation>> {
    use crate::tnorms::*;
    vec![
        Box::new(IteratedTNorm(Minimum)),
        Box::new(IteratedTNorm(DrasticProduct)),
        Box::new(IteratedTNorm(BoundedDifference)),
        Box::new(IteratedTNorm(EinsteinProduct)),
        Box::new(IteratedTNorm(AlgebraicProduct)),
        Box::new(IteratedTNorm(HamacherProduct)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::grade_grid;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn min_agg_matches_slice_min() {
        let a = min_agg();
        assert_eq!(a.combine(&[g(0.4), g(0.9), g(0.2)]), g(0.2));
        assert_eq!(a.combine(&[]), Grade::ONE);
        assert_eq!(a.combine(&[g(0.4)]), g(0.4));
    }

    #[test]
    fn max_agg_matches_slice_max() {
        let a = max_agg();
        assert_eq!(a.combine(&[g(0.4), g(0.9), g(0.2)]), g(0.9));
        assert_eq!(a.combine(&[]), Grade::ZERO);
    }

    #[test]
    fn product_agg_multiplies() {
        let a = product_agg();
        assert!(a
            .combine(&[g(0.5), g(0.5), g(0.5)])
            .approx_eq(g(0.125), 1e-12));
    }

    #[test]
    fn iterated_tnorms_are_strict_empirically() {
        // t(x1..x3) = 1 iff all arguments are 1, verified on a grid.
        let grid = grade_grid(4);
        for agg in all_iterated_tnorms() {
            for &x in &grid {
                for &y in &grid {
                    for &z in &grid {
                        let v = agg.combine(&[x, y, z]);
                        let all_one = x == Grade::ONE && y == Grade::ONE && z == Grade::ONE;
                        assert_eq!(
                            v == Grade::ONE,
                            all_one,
                            "{} strictness fails at ({x},{y},{z})",
                            agg.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn iterated_conorm_not_strict() {
        let a = max_agg();
        assert!(!a.is_strict(2));
        assert!(a.is_strict(1));
        // Witness: max(1, 0) = 1 without all arguments being 1.
        assert_eq!(a.combine(&[Grade::ONE, Grade::ZERO]), Grade::ONE);
    }

    #[test]
    fn iterated_monotone_on_grid() {
        // Raising any single argument never lowers the output.
        let grid = grade_grid(5);
        for agg in all_iterated_tnorms() {
            for &x in &grid {
                for &y in &grid {
                    for &x2 in &grid {
                        if x2 >= x {
                            assert!(
                                agg.combine(&[x2, y]) >= agg.combine(&[x, y]),
                                "{} monotonicity fails",
                                agg.name()
                            );
                        }
                    }
                }
            }
        }
    }
}
