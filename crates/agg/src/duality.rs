//! De Morgan duality between t-norms and t-conorms.
//!
//! If `t` is a triangular norm then `s(x, y) = n(t(n(x), n(y)))` is a
//! triangular co-norm (and vice versa) for suitable negations `n` [Al85,
//! BD86]; Section 3 of the paper lists the norm/co-norm pairs produced this
//! way under the standard negation. These adapters build the dual
//! *generically*, so the test-suite can verify that each named co-norm in
//! [`crate::tconorms`] equals the generic dual of its named t-norm.

use crate::grade::Grade;
use crate::negation::StandardNegation;
use crate::traits::{Negation, TCoNorm, TNorm};

/// The co-norm `s(x,y) = n(t(n x, n y))` induced by a t-norm and a negation.
#[derive(Debug, Clone, Copy)]
pub struct DualCoNorm<T, N = StandardNegation> {
    tnorm: T,
    negation: N,
}

impl<T: TNorm> DualCoNorm<T, StandardNegation> {
    /// Dual under the standard negation `1 - x`.
    pub fn standard(tnorm: T) -> Self {
        DualCoNorm {
            tnorm,
            negation: StandardNegation,
        }
    }
}

impl<T: TNorm, N: Negation> DualCoNorm<T, N> {
    /// Dual under an arbitrary negation.
    pub fn new(tnorm: T, negation: N) -> Self {
        DualCoNorm { tnorm, negation }
    }
}

impl<T: TNorm, N: Negation> TCoNorm for DualCoNorm<T, N> {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        self.negation.negate(
            self.tnorm
                .t(self.negation.negate(x), self.negation.negate(y)),
        )
    }
    fn name(&self) -> String {
        format!("dual({}, {})", self.tnorm.name(), self.negation.name())
    }
}

/// The t-norm `t(x,y) = n(s(n x, n y))` induced by a co-norm and a negation.
#[derive(Debug, Clone, Copy)]
pub struct DualTNorm<S, N = StandardNegation> {
    conorm: S,
    negation: N,
}

impl<S: TCoNorm> DualTNorm<S, StandardNegation> {
    /// Dual under the standard negation `1 - x`.
    pub fn standard(conorm: S) -> Self {
        DualTNorm {
            conorm,
            negation: StandardNegation,
        }
    }
}

impl<S: TCoNorm, N: Negation> DualTNorm<S, N> {
    /// Dual under an arbitrary negation.
    pub fn new(conorm: S, negation: N) -> Self {
        DualTNorm { conorm, negation }
    }
}

impl<S: TCoNorm, N: Negation> TNorm for DualTNorm<S, N> {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        self.negation.negate(
            self.conorm
                .s(self.negation.negate(x), self.negation.negate(y)),
        )
    }
    fn name(&self) -> String {
        format!("dual({}, {})", self.conorm.name(), self.negation.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::grade_grid;
    use crate::tconorms::*;
    use crate::tnorms::*;

    /// Checks `s == dual(t)` pointwise on a grid.
    fn assert_dual_pair(t: &dyn TNorm, s: &dyn TCoNorm) {
        let dual = DualCoNorm::standard(t);
        for x in grade_grid(16) {
            for y in grade_grid(16) {
                assert!(
                    s.s(x, y).approx_eq(dual.s(x, y), 1e-9),
                    "{} is not the standard dual of {} at ({x}, {y}): {} vs {}",
                    s.name(),
                    t.name(),
                    s.s(x, y),
                    dual.s(x, y),
                );
            }
        }
    }

    #[test]
    fn paper_pairs_are_duals() {
        // The exact pairing from the Section 3 list.
        assert_dual_pair(&Minimum, &Maximum);
        assert_dual_pair(&DrasticProduct, &DrasticSum);
        assert_dual_pair(&BoundedDifference, &BoundedSum);
        assert_dual_pair(&EinsteinProduct, &EinsteinSum);
        assert_dual_pair(&AlgebraicProduct, &AlgebraicSum);
        assert_dual_pair(&HamacherProduct, &HamacherSum);
    }

    #[test]
    fn double_dual_is_identity() {
        // dual(dual(t)) == t under an involutive negation.
        let t = AlgebraicProduct;
        let round_trip = DualTNorm::standard(DualCoNorm::standard(t));
        for x in grade_grid(16) {
            for y in grade_grid(16) {
                assert!(round_trip.t(x, y).approx_eq(t.t(x, y), 1e-9));
            }
        }
    }

    #[test]
    fn de_morgan_laws_hold() {
        // s(x,y) = n(t(n x, n y)) and t(x,y) = n(s(n x, n y)) \[BD86\].
        let n = StandardNegation;
        for x in grade_grid(12) {
            for y in grade_grid(12) {
                let lhs = AlgebraicSum.s(x, y);
                let rhs = n.negate(AlgebraicProduct.t(n.negate(x), n.negate(y)));
                assert!(lhs.approx_eq(rhs, 1e-9));

                let lhs = AlgebraicProduct.t(x, y);
                let rhs = n.negate(AlgebraicSum.s(n.negate(x), n.negate(y)));
                assert!(lhs.approx_eq(rhs, 1e-9));
            }
        }
    }
}
