//! The triangular co-norms catalogued in Section 3 of the paper, each the
//! De Morgan dual (under the standard negation) of the t-norm of the same
//! family name: `s(x, y) = 1 - t(1-x, 1-y)` \[Al85\].

use crate::grade::Grade;
use crate::traits::TCoNorm;

/// `max(x, y)` — the standard fuzzy disjunction \[Za65\]; dual of min.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Maximum;

impl TCoNorm for Maximum {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        x.max(y)
    }
    fn name(&self) -> String {
        "max".to_owned()
    }
}

/// Drastic sum: `max(x,y)` if `min(x,y) = 0`, else `1`. Dual of the drastic
/// product; the pointwise *largest* co-norm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrasticSum;

impl TCoNorm for DrasticSum {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        if x == Grade::ZERO || y == Grade::ZERO {
            x.max(y)
        } else {
            Grade::ONE
        }
    }
    fn name(&self) -> String {
        "drastic-sum".to_owned()
    }
}

/// Bounded sum: `min(1, x + y)`. Dual of bounded difference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundedSum;

impl TCoNorm for BoundedSum {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        Grade::clamped(x.value() + y.value())
    }
    fn name(&self) -> String {
        "bounded-sum".to_owned()
    }
}

/// Einstein sum: `(x + y) / (1 + xy)`. Dual of the Einstein product.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EinsteinSum;

impl TCoNorm for EinsteinSum {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        let (x, y) = (x.value(), y.value());
        Grade::clamped((x + y) / (1.0 + x * y))
    }
    fn name(&self) -> String {
        "einstein-sum".to_owned()
    }
}

/// Algebraic sum: `x + y - xy` (probabilistic disjunction). Dual of the
/// algebraic product.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgebraicSum;

impl TCoNorm for AlgebraicSum {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        let (x, y) = (x.value(), y.value());
        Grade::clamped(x + y - x * y)
    }
    fn name(&self) -> String {
        "algebraic-sum".to_owned()
    }
}

/// Hamacher sum: `(x + y - 2xy) / (1 - xy)`, with `s(1,1) = 1` by continuity
/// convention (the formula is 0/0 there). Dual of the Hamacher product.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HamacherSum;

impl TCoNorm for HamacherSum {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        let (x, y) = (x.value(), y.value());
        let denom = 1.0 - x * y;
        if denom == 0.0 {
            Grade::ONE
        } else {
            Grade::clamped((x + y - 2.0 * x * y) / denom)
        }
    }
    fn name(&self) -> String {
        "hamacher-sum".to_owned()
    }
}

/// All co-norms from the paper's Section 3 list, boxed for table-driven tests.
pub fn all_tconorms() -> Vec<Box<dyn TCoNorm>> {
    vec![
        Box::new(Maximum),
        Box::new(DrasticSum),
        Box::new(BoundedSum),
        Box::new(EinsteinSum),
        Box::new(AlgebraicSum),
        Box::new(HamacherSum),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::grade_grid;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    #[test]
    fn max_basic() {
        assert_eq!(Maximum.s(g(0.3), g(0.8)), g(0.8));
    }

    #[test]
    fn drastic_sum_is_one_off_boundary() {
        assert_eq!(DrasticSum.s(g(0.1), g(0.1)), Grade::ONE);
        assert_eq!(DrasticSum.s(Grade::ZERO, g(0.1)), g(0.1));
    }

    #[test]
    fn bounded_sum_saturates() {
        assert_eq!(BoundedSum.s(g(0.7), g(0.7)), Grade::ONE);
        assert!(BoundedSum.s(g(0.2), g(0.3)).approx_eq(g(0.5), 1e-12));
    }

    #[test]
    fn einstein_sum_midpoint() {
        // 1.0 / 1.25 = 0.8
        assert!(EinsteinSum
            .s(Grade::HALF, Grade::HALF)
            .approx_eq(g(0.8), 1e-12));
    }

    #[test]
    fn algebraic_sum_midpoint() {
        assert!(AlgebraicSum
            .s(Grade::HALF, Grade::HALF)
            .approx_eq(g(0.75), 1e-12));
    }

    #[test]
    fn hamacher_sum_corner_case() {
        assert_eq!(HamacherSum.s(Grade::ONE, Grade::ONE), Grade::ONE);
        // (1 - 0.5) / (1 - 0.25) = 2/3
        assert!(HamacherSum
            .s(Grade::HALF, Grade::HALF)
            .approx_eq(g(2.0 / 3.0), 1e-12));
    }

    #[test]
    fn conservation_on_all() {
        for sn in all_tconorms() {
            assert_eq!(sn.s(Grade::ONE, Grade::ONE), Grade::ONE, "{}", sn.name());
            for v in grade_grid(10) {
                assert!(
                    sn.s(v, Grade::ZERO).approx_eq(v, 1e-12),
                    "{} fails s(x,0)=x",
                    sn.name()
                );
                assert!(
                    sn.s(Grade::ZERO, v).approx_eq(v, 1e-12),
                    "{} fails s(0,x)=x",
                    sn.name()
                );
            }
        }
    }

    #[test]
    fn all_are_sandwiched_between_max_and_drastic() {
        let grid = grade_grid(10);
        for sn in all_tconorms() {
            for &x in &grid {
                for &y in &grid {
                    // Tolerance for floating-point rounding in the rational
                    // co-norms (Einstein, Hamacher, algebraic).
                    let v = sn.s(x, y).value();
                    assert!(
                        Maximum.s(x, y).value() - 1e-9 <= v
                            && v <= DrasticSum.s(x, y).value() + 1e-9,
                        "{} violates max <= s <= drastic at ({x}, {y})",
                        sn.name()
                    );
                }
            }
        }
    }
}
