//! Fuzzy negations. The paper uses Zadeh's standard rule `n(x) = 1 - x`
//! (Section 3); Bonissone and Decker \[BD86\] show De Morgan duality holds for
//! "suitable" negations, of which the Sugeno and Yager families are the
//! classical parametric examples.

use crate::grade::Grade;
use crate::traits::Negation;

/// The standard negation `n(x) = 1 - x` — involutive, with fixed point `1/2`
/// (which is what makes `Q AND NOT Q` peak at grade `1/2` in Section 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNegation;

impl Negation for StandardNegation {
    fn negate(&self, x: Grade) -> Grade {
        x.complement()
    }
    fn name(&self) -> String {
        "standard".to_owned()
    }
}

/// Sugeno's parametric negation `n(x) = (1 - x) / (1 + λx)` for `λ > -1`.
/// `λ = 0` recovers the standard negation. Involutive for every valid `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SugenoNegation {
    lambda: f64,
}

impl SugenoNegation {
    /// Creates the negation; `lambda` must be greater than `-1`.
    ///
    /// # Panics
    /// Panics if `lambda <= -1` (the formula leaves `[0,1]` there).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > -1.0, "Sugeno negation requires lambda > -1");
        SugenoNegation { lambda }
    }

    /// The λ parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Negation for SugenoNegation {
    fn negate(&self, x: Grade) -> Grade {
        let v = x.value();
        Grade::clamped((1.0 - v) / (1.0 + self.lambda * v))
    }
    fn name(&self) -> String {
        format!("sugeno(λ={})", self.lambda)
    }
}

/// Yager's parametric negation `n(x) = (1 - x^w)^(1/w)` for `w > 0`.
/// `w = 1` recovers the standard negation. Involutive for every valid `w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YagerNegation {
    w: f64,
}

impl YagerNegation {
    /// Creates the negation; `w` must be positive.
    ///
    /// # Panics
    /// Panics if `w <= 0`.
    pub fn new(w: f64) -> Self {
        assert!(w > 0.0, "Yager negation requires w > 0");
        YagerNegation { w }
    }

    /// The w parameter.
    pub fn w(&self) -> f64 {
        self.w
    }
}

impl Negation for YagerNegation {
    fn negate(&self, x: Grade) -> Grade {
        Grade::clamped((1.0 - x.value().powf(self.w)).powf(1.0 / self.w))
    }
    fn name(&self) -> String {
        format!("yager(w={})", self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::grade_grid;

    #[test]
    fn standard_is_involutive_with_half_fixed_point() {
        for g in grade_grid(20) {
            assert!(StandardNegation
                .negate(StandardNegation.negate(g))
                .approx_eq(g, 1e-12));
        }
        assert_eq!(StandardNegation.negate(Grade::HALF), Grade::HALF);
    }

    #[test]
    fn sugeno_zero_lambda_is_standard() {
        let n = SugenoNegation::new(0.0);
        for g in grade_grid(20) {
            assert!(n.negate(g).approx_eq(StandardNegation.negate(g), 1e-12));
        }
    }

    #[test]
    fn sugeno_is_involutive() {
        for lambda in [-0.5, 0.5, 2.0, 10.0] {
            let n = SugenoNegation::new(lambda);
            for g in grade_grid(20) {
                assert!(
                    n.negate(n.negate(g)).approx_eq(g, 1e-9),
                    "λ={lambda}, g={g}"
                );
            }
        }
    }

    #[test]
    fn yager_is_involutive() {
        for w in [0.5, 1.0, 2.0, 5.0] {
            let n = YagerNegation::new(w);
            for g in grade_grid(20) {
                assert!(n.negate(n.negate(g)).approx_eq(g, 1e-9), "w={w}, g={g}");
            }
        }
    }

    #[test]
    fn boundary_conditions() {
        let negs: Vec<Box<dyn Negation>> = vec![
            Box::new(StandardNegation),
            Box::new(SugenoNegation::new(1.5)),
            Box::new(YagerNegation::new(2.0)),
        ];
        for n in negs {
            assert_eq!(n.negate(Grade::ZERO), Grade::ONE, "{}", n.name());
            assert_eq!(n.negate(Grade::ONE), Grade::ZERO, "{}", n.name());
        }
    }

    #[test]
    #[should_panic]
    fn sugeno_rejects_bad_lambda() {
        SugenoNegation::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn yager_rejects_bad_w() {
        YagerNegation::new(0.0);
    }
}
