//! # garlic-agg — the fuzzy aggregation calculus of Fagin (PODS 1996), §3
//!
//! This crate implements everything Section 3 of *Combining Fuzzy
//! Information from Multiple Systems* needs:
//!
//! * [`Grade`] — a real number in `[0, 1]` (the grade of an object under a
//!   query), with a total order.
//! * [`TNorm`]/[`TCoNorm`]/[`Negation`] — the classical 2-ary connective
//!   families, with the paper's full catalogue in [`tnorms`] and
//!   [`tconorms`], and De Morgan duality in [`duality`].
//! * [`Aggregation`] — the m-ary aggregation functions that give semantics
//!   to compound queries, together with the two properties that drive the
//!   paper's theorems: **monotonicity** (upper bound, Theorem 5.3) and
//!   **strictness** (lower bound, Theorem 6.4).
//! * [`means`] — the Thole–Zimmermann–Zysno means (monotone, strict, not
//!   t-norms) and the non-strict aggregations of Remark 6.1 (median,
//!   gymnastics trimmed mean).
//! * [`order_stat`] — order statistics and identity (13), the basis of the
//!   sub-linear median algorithm.
//! * [`weighted`] — the Fagin–Wimmers weighted conjunction \[FW97\] that §4
//!   points out is also monotone.
//! * [`axioms`] — empirical grid checkers for every axiom, used throughout
//!   the test-suite.
//!
//! ## Quick example
//!
//! ```
//! use garlic_agg::{Grade, Aggregation, iterated::min_agg};
//!
//! let conj = min_agg(); // the standard fuzzy conjunction
//! let grade = conj.combine(&[Grade::new(0.9).unwrap(), Grade::new(0.4).unwrap()]);
//! assert_eq!(grade, Grade::new(0.4).unwrap());
//! assert!(conj.is_monotone() && conj.is_strict(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod duality;
pub mod families;
pub mod grade;
pub mod iterated;
pub mod means;
pub mod negation;
pub mod order_stat;
pub mod tconorms;
pub mod tnorms;
pub mod traits;
pub mod weighted;

pub use grade::{grade_grid, Grade, GradeError};
pub use traits::{Aggregation, Negation, TCoNorm, TNorm};
