//! Empirical axiom checkers for t-norms, co-norms, and aggregations.
//!
//! Section 3 defines the t-norm axioms (∧-conservation, monotonicity,
//! commutativity, associativity), the co-norm duals, and the two properties
//! the paper's theorems hinge on (monotonicity and strictness of the m-ary
//! aggregation). These checkers evaluate the candidate on a dense grid over
//! `[0,1]²`/`[0,1]³` and report the first violation found, and are used by
//! the test-suite to validate every declared property in this crate.

use crate::grade::{grade_grid, Grade};
use crate::traits::{Aggregation, TCoNorm, TNorm};

/// A reported axiom violation, carrying the axiom name and a witness point.
#[derive(Debug, Clone, PartialEq)]
pub struct AxiomViolation {
    /// Which axiom failed, e.g. `"commutativity"`.
    pub axiom: &'static str,
    /// Human-readable witness, e.g. `"t(0.25, 0.5) = 0.1 != t(0.5, 0.25) = 0.2"`.
    pub witness: String,
}

impl std::fmt::Display for AxiomViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.axiom, self.witness)
    }
}

const EPS: f64 = 1e-9;

/// Checks all four t-norm axioms on a grid with `steps + 1` points per axis.
pub fn check_tnorm_axioms(t: &dyn TNorm, steps: usize) -> Result<(), AxiomViolation> {
    let grid = grade_grid(steps);

    // ∧-conservation: t(0,0) = 0; t(x,1) = t(1,x) = x.
    if t.t(Grade::ZERO, Grade::ZERO) != Grade::ZERO {
        return Err(AxiomViolation {
            axiom: "and-conservation",
            witness: format!("t(0,0) = {}", t.t(Grade::ZERO, Grade::ZERO)),
        });
    }
    for &x in &grid {
        if !t.t(x, Grade::ONE).approx_eq(x, EPS) || !t.t(Grade::ONE, x).approx_eq(x, EPS) {
            return Err(AxiomViolation {
                axiom: "and-conservation",
                witness: format!(
                    "t({x},1) = {}, t(1,{x}) = {}",
                    t.t(x, Grade::ONE),
                    t.t(Grade::ONE, x)
                ),
            });
        }
    }

    // Monotonicity in both arguments.
    for &x1 in &grid {
        for &x2 in &grid {
            for &y1 in &grid {
                for &y2 in &grid {
                    if x1 <= y1 && x2 <= y2 && t.t(x1, x2) > t.t(y1, y2) {
                        return Err(AxiomViolation {
                            axiom: "monotonicity",
                            witness: format!(
                                "t({x1},{x2}) = {} > t({y1},{y2}) = {}",
                                t.t(x1, x2),
                                t.t(y1, y2)
                            ),
                        });
                    }
                }
            }
        }
    }

    // Commutativity.
    for &x in &grid {
        for &y in &grid {
            if !t.t(x, y).approx_eq(t.t(y, x), EPS) {
                return Err(AxiomViolation {
                    axiom: "commutativity",
                    witness: format!("t({x},{y}) = {} != t({y},{x}) = {}", t.t(x, y), t.t(y, x)),
                });
            }
        }
    }

    // Associativity.
    for &x in &grid {
        for &y in &grid {
            for &z in &grid {
                let lhs = t.t(t.t(x, y), z);
                let rhs = t.t(x, t.t(y, z));
                if !lhs.approx_eq(rhs, EPS) {
                    return Err(AxiomViolation {
                        axiom: "associativity",
                        witness: format!("t(t({x},{y}),{z}) = {lhs} != t({x},t({y},{z})) = {rhs}"),
                    });
                }
            }
        }
    }

    Ok(())
}

/// Checks all four t-conorm axioms on a grid with `steps + 1` points per axis.
pub fn check_tconorm_axioms(s: &dyn TCoNorm, steps: usize) -> Result<(), AxiomViolation> {
    let grid = grade_grid(steps);

    // ∨-conservation: s(1,1) = 1; s(x,0) = s(0,x) = x.
    if s.s(Grade::ONE, Grade::ONE) != Grade::ONE {
        return Err(AxiomViolation {
            axiom: "or-conservation",
            witness: format!("s(1,1) = {}", s.s(Grade::ONE, Grade::ONE)),
        });
    }
    for &x in &grid {
        if !s.s(x, Grade::ZERO).approx_eq(x, EPS) || !s.s(Grade::ZERO, x).approx_eq(x, EPS) {
            return Err(AxiomViolation {
                axiom: "or-conservation",
                witness: format!(
                    "s({x},0) = {}, s(0,{x}) = {}",
                    s.s(x, Grade::ZERO),
                    s.s(Grade::ZERO, x)
                ),
            });
        }
    }

    for &x1 in &grid {
        for &x2 in &grid {
            for &y1 in &grid {
                for &y2 in &grid {
                    if x1 <= y1 && x2 <= y2 && s.s(x1, x2) > s.s(y1, y2) {
                        return Err(AxiomViolation {
                            axiom: "monotonicity",
                            witness: format!(
                                "s({x1},{x2}) = {} > s({y1},{y2}) = {}",
                                s.s(x1, x2),
                                s.s(y1, y2)
                            ),
                        });
                    }
                }
            }
        }
    }

    for &x in &grid {
        for &y in &grid {
            if !s.s(x, y).approx_eq(s.s(y, x), EPS) {
                return Err(AxiomViolation {
                    axiom: "commutativity",
                    witness: format!("s({x},{y}) != s({y},{x})"),
                });
            }
        }
    }

    for &x in &grid {
        for &y in &grid {
            for &z in &grid {
                let lhs = s.s(s.s(x, y), z);
                let rhs = s.s(x, s.s(y, z));
                if !lhs.approx_eq(rhs, EPS) {
                    return Err(AxiomViolation {
                        axiom: "associativity",
                        witness: format!("s(s({x},{y}),{z}) = {lhs} != s({x},s({y},{z})) = {rhs}"),
                    });
                }
            }
        }
    }

    Ok(())
}

/// Checks monotonicity of an m-ary aggregation at the given arity, on a grid:
/// raising one coordinate at a time must never lower the output.
pub fn check_monotone(
    agg: &dyn Aggregation,
    arity: usize,
    steps: usize,
) -> Result<(), AxiomViolation> {
    let grid = grade_grid(steps);
    let mut point = vec![Grade::ZERO; arity];
    check_monotone_rec(agg, &grid, &mut point, 0)
}

fn check_monotone_rec(
    agg: &dyn Aggregation,
    grid: &[Grade],
    point: &mut Vec<Grade>,
    depth: usize,
) -> Result<(), AxiomViolation> {
    if depth == point.len() {
        let base = agg.combine(point);
        // Raise each coordinate to every larger grid value.
        for i in 0..point.len() {
            let original = point[i];
            for &higher in grid.iter().filter(|&&g| g > original) {
                point[i] = higher;
                let raised = agg.combine(point);
                point[i] = original;
                if raised < base {
                    return Err(AxiomViolation {
                        axiom: "monotonicity",
                        witness: format!(
                            "raising coordinate {i} of {point:?} to {higher} lowered {} to {}",
                            base, raised
                        ),
                    });
                }
            }
        }
        return Ok(());
    }
    for &g in grid {
        point[depth] = g;
        check_monotone_rec(agg, grid, point, depth + 1)?;
    }
    Ok(())
}

/// Checks strictness of an m-ary aggregation at the given arity, on a grid:
/// output 1 exactly at the all-ones point.
pub fn check_strict(
    agg: &dyn Aggregation,
    arity: usize,
    steps: usize,
) -> Result<(), AxiomViolation> {
    let grid = grade_grid(steps);
    let mut point = vec![Grade::ZERO; arity];
    check_strict_rec(agg, &grid, &mut point, 0)
}

fn check_strict_rec(
    agg: &dyn Aggregation,
    grid: &[Grade],
    point: &mut Vec<Grade>,
    depth: usize,
) -> Result<(), AxiomViolation> {
    if depth == point.len() {
        let v = agg.combine(point);
        let all_ones = point.iter().all(|&g| g == Grade::ONE);
        if (v == Grade::ONE) != all_ones {
            return Err(AxiomViolation {
                axiom: "strictness",
                witness: format!("agg({point:?}) = {v}, all_ones = {all_ones}"),
            });
        }
        return Ok(());
    }
    for &g in grid {
        point[depth] = g;
        check_strict_rec(agg, grid, point, depth + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterated::{max_agg, IteratedTNorm};
    use crate::means::{ArithmeticMean, MedianAgg};
    use crate::tconorms::all_tconorms;
    use crate::tnorms::{all_tnorms, Minimum};

    #[test]
    fn every_paper_tnorm_passes_axioms() {
        for t in all_tnorms() {
            check_tnorm_axioms(t.as_ref(), 8).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
        }
    }

    #[test]
    fn every_paper_tconorm_passes_axioms() {
        for s in all_tconorms() {
            check_tconorm_axioms(s.as_ref(), 8).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        }
    }

    #[test]
    fn mean_fails_conservation_but_is_monotone_and_strict() {
        // ArithmeticMean as a "binary t-norm candidate": conservation fails.
        struct MeanAsNorm;
        impl TNorm for MeanAsNorm {
            fn t(&self, x: Grade, y: Grade) -> Grade {
                ArithmeticMean.combine(&[x, y])
            }
            fn name(&self) -> String {
                "mean-as-norm".into()
            }
        }
        let err = check_tnorm_axioms(&MeanAsNorm, 4).unwrap_err();
        assert_eq!(err.axiom, "and-conservation");

        // But as an aggregation it is monotone and strict — the paper's point
        // about \[TZZ79\]-style means.
        check_monotone(&ArithmeticMean, 3, 4).unwrap();
        check_strict(&ArithmeticMean, 3, 4).unwrap();
    }

    #[test]
    fn median_fails_strictness() {
        let err = check_strict(&MedianAgg, 3, 2).unwrap_err();
        assert_eq!(err.axiom, "strictness");
        check_monotone(&MedianAgg, 3, 3).unwrap();
    }

    #[test]
    fn max_fails_strictness() {
        let err = check_strict(&max_agg(), 2, 2).unwrap_err();
        assert_eq!(err.axiom, "strictness");
    }

    #[test]
    fn iterated_min_is_monotone_and_strict() {
        let agg = IteratedTNorm(Minimum);
        check_monotone(&agg, 3, 4).unwrap();
        check_strict(&agg, 3, 4).unwrap();
    }

    #[test]
    fn violation_display_is_informative() {
        let err = check_strict(&max_agg(), 2, 2).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("strictness"));
    }
}
