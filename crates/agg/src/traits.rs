//! Core aggregation traits.
//!
//! Section 3 of the paper defines an *m-ary aggregation function* as a map
//! `[0,1]^m -> [0,1]` and singles out two properties that drive all of the
//! paper's theorems:
//!
//! * **Monotonicity** — needed for the *upper* bound (Theorem 5.3): algorithm
//!   A0 is correct exactly for monotone queries (Theorem 4.2).
//! * **Strictness** (`t(x_1..x_m) = 1` iff every `x_i = 1`) — needed for the
//!   *lower* bound (Theorem 6.4).
//!
//! [`Aggregation`] is the m-ary interface consumed by the algorithms in
//! `garlic-core`; [`TNorm`]/[`TCoNorm`] are the classical 2-ary families from
//! which m-ary aggregations are usually built by iteration (see
//! [`crate::iterated`]).

use crate::grade::Grade;

/// An m-ary aggregation function `t : [0,1]^m -> [0,1]` (Section 3).
///
/// Implementations must be deterministic and, unless documented otherwise,
/// monotone in every argument. The two property methods report *declared*
/// properties; [`crate::axioms`] provides empirical grid checkers used by the
/// test-suite to validate the declarations.
pub trait Aggregation {
    /// Human-readable name used in plans, tables, and benches.
    fn name(&self) -> String;

    /// Combines the argument grades into a single grade.
    ///
    /// # Panics
    /// Implementations may panic if `grades.len()` is incompatible with the
    /// function (e.g. a weighted aggregation with a fixed number of weights).
    fn combine(&self, grades: &[Grade]) -> Grade;

    /// [`combine`](Aggregation::combine), but any internal working buffer
    /// is taken from `scratch` instead of freshly allocated — the
    /// zero-allocation scoring path for tight loops that combine millions
    /// of borrowed grade slices (the top-k engine scores every candidate
    /// through this).
    ///
    /// The default ignores `scratch` and delegates to `combine` — correct
    /// for every aggregation that allocates nothing (min, max, product,
    /// means). Aggregations that sort or build prefixes (order statistics,
    /// the median, Fagin–Wimmers weighting) override it to reuse the
    /// buffer. Must return exactly what `combine` returns; `scratch` is
    /// clobbered and carries no state between calls.
    fn combine_reusing(&self, grades: &[Grade], scratch: &mut Vec<Grade>) -> Grade {
        let _ = scratch;
        self.combine(grades)
    }

    /// Whether the function is monotone: `x_i <= x'_i` for all `i` implies
    /// `t(x) <= t(x')`. All aggregations intended for conjunctions are.
    fn is_monotone(&self) -> bool {
        true
    }

    /// Whether the function is strict at the given arity:
    /// `t(x_1..x_m) = 1` iff `x_i = 1` for every `i`.
    ///
    /// Strictness can depend on arity (the j-th-largest order statistic is
    /// strict only when `j = m`), hence the parameter.
    fn is_strict(&self, arity: usize) -> bool;

    /// Whether a single zero argument forces the output to zero:
    /// `t(..., 0, ...) = 0`. True for every t-norm (it follows from
    /// ∧-conservation plus monotonicity); false for means. This is the
    /// property the Section 4 filtered ("Beatles") strategy relies on:
    /// objects failing the crisp conjunct need never be retrieved because
    /// their overall grade is already known to be zero.
    fn zero_annihilates(&self, arity: usize) -> bool {
        let _ = arity;
        false
    }
}

/// Blanket impl so boxed (including trait-object) aggregations compose.
impl<A: Aggregation + ?Sized> Aggregation for Box<A> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn combine(&self, grades: &[Grade]) -> Grade {
        (**self).combine(grades)
    }
    fn combine_reusing(&self, grades: &[Grade], scratch: &mut Vec<Grade>) -> Grade {
        (**self).combine_reusing(grades, scratch)
    }
    fn is_monotone(&self) -> bool {
        (**self).is_monotone()
    }
    fn is_strict(&self, arity: usize) -> bool {
        (**self).is_strict(arity)
    }
    fn zero_annihilates(&self, arity: usize) -> bool {
        (**self).zero_annihilates(arity)
    }
}

/// Blanket impl so `&A` can be passed where an `Aggregation` is expected.
impl<A: Aggregation + ?Sized> Aggregation for &A {
    fn name(&self) -> String {
        (**self).name()
    }
    fn combine(&self, grades: &[Grade]) -> Grade {
        (**self).combine(grades)
    }
    fn combine_reusing(&self, grades: &[Grade], scratch: &mut Vec<Grade>) -> Grade {
        (**self).combine_reusing(grades, scratch)
    }
    fn is_monotone(&self) -> bool {
        (**self).is_monotone()
    }
    fn is_strict(&self, arity: usize) -> bool {
        (**self).is_strict(arity)
    }
    fn zero_annihilates(&self, arity: usize) -> bool {
        (**self).zero_annihilates(arity)
    }
}

/// A triangular norm [SS63, DP80]: a 2-ary aggregation function satisfying
/// ∧-conservation (`t(0,0)=0`, `t(x,1)=t(1,x)=x`), monotonicity,
/// commutativity, and associativity. The natural semantics for fuzzy
/// conjunction; every t-norm is bounded between the drastic product and min.
pub trait TNorm {
    /// Applies the norm.
    fn t(&self, x: Grade, y: Grade) -> Grade;

    /// Human-readable name.
    fn name(&self) -> String;
}

/// A triangular co-norm \[DP85\]: the dual notion for disjunction, satisfying
/// ∨-conservation (`s(1,1)=1`, `s(x,0)=s(0,x)=x`), monotonicity,
/// commutativity, and associativity.
pub trait TCoNorm {
    /// Applies the co-norm.
    fn s(&self, x: Grade, y: Grade) -> Grade;

    /// Human-readable name.
    fn name(&self) -> String;
}

/// A fuzzy negation: antitone with `n(0)=1`, `n(1)=0`.
pub trait Negation {
    /// Applies the negation.
    fn negate(&self, x: Grade) -> Grade;

    /// Human-readable name.
    fn name(&self) -> String;
}

impl<T: TNorm + ?Sized> TNorm for &T {
    fn t(&self, x: Grade, y: Grade) -> Grade {
        (**self).t(x, y)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<S: TCoNorm + ?Sized> TCoNorm for &S {
    fn s(&self, x: Grade, y: Grade) -> Grade {
        (**self).s(x, y)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<N: Negation + ?Sized> Negation for &N {
    fn negate(&self, x: Grade) -> Grade {
        (**self).negate(x)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}
