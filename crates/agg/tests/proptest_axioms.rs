//! Property tests for the Section 3 algebra on *random* points (the unit
//! tests check dense grids; these hammer arbitrary floats, where the
//! rational norms' rounding behaviour lives).

use garlic_agg::duality::DualCoNorm;
use garlic_agg::iterated::{all_iterated_tnorms, min_agg, IteratedTNorm};
use garlic_agg::negation::{StandardNegation, SugenoNegation, YagerNegation};
use garlic_agg::tconorms::all_tconorms;
use garlic_agg::tnorms::{all_tnorms, DrasticProduct, Minimum};
use garlic_agg::weighted::FaginWimmers;
use garlic_agg::{Aggregation, Grade, Negation, TNorm};
use proptest::prelude::*;

fn grade() -> impl Strategy<Value = Grade> {
    (0.0f64..=1.0).prop_map(Grade::clamped)
}

const EPS: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tnorm_axioms_at_random_points(x in grade(), y in grade(), z in grade()) {
        for t in all_tnorms() {
            // Commutativity.
            prop_assert!(t.t(x, y).approx_eq(t.t(y, x), EPS), "{}", t.name());
            // Associativity.
            prop_assert!(
                t.t(t.t(x, y), z).approx_eq(t.t(x, t.t(y, z)), EPS),
                "{}", t.name()
            );
            // Conservation at the unit.
            prop_assert!(t.t(x, Grade::ONE).approx_eq(x, EPS), "{}", t.name());
            // The \[DP80\] sandwich (strictness follows from it).
            let v = t.t(x, y).value();
            prop_assert!(
                DrasticProduct.t(x, y).value() - EPS <= v
                    && v <= Minimum.t(x, y).value() + EPS,
                "{}", t.name()
            );
        }
    }

    /// `combine_reusing` must be *exactly* `combine` for every
    /// aggregation that overrides it — the zero-alloc scoring path may
    /// never change a grade, and a dirty scratch buffer may never leak
    /// state between calls.
    #[test]
    fn combine_reusing_is_bit_identical_to_combine(
        grades in proptest::collection::vec((0.0f64..=1.0).prop_map(Grade::clamped), 1..9),
        junk in proptest::collection::vec((0.0f64..=1.0).prop_map(Grade::clamped), 0..9),
    ) {
        let m = grades.len();
        let mut aggs: Vec<Box<dyn Aggregation>> = vec![
            Box::new(min_agg()),
            Box::new(garlic_agg::means::ArithmeticMean),
            Box::new(garlic_agg::means::MedianAgg),
            Box::new(garlic_agg::order_stat::KthLargest::new(1)),
            Box::new(garlic_agg::order_stat::KthLargest::new(m)),
            Box::new(garlic_agg::order_stat::KthLargest::median_for_arity(m)),
            Box::new(FaginWimmers::new(min_agg(), &vec![1.0; m])),
            Box::new(FaginWimmers::new(
                min_agg(),
                &(0..m).map(|i| (i + 1) as f64).collect::<Vec<_>>(),
            )),
        ];
        if m >= 3 {
            aggs.push(Box::new(garlic_agg::means::GymnasticsTrimmedMean));
        }
        // Deliberately dirty scratch: leftover junk must not matter.
        let mut scratch = junk;
        for agg in &aggs {
            let plain = agg.combine(&grades);
            let reused = agg.combine_reusing(&grades, &mut scratch);
            prop_assert_eq!(plain, reused, "{}", agg.name());
            // And again, with whatever the previous call left behind.
            prop_assert_eq!(plain, agg.combine_reusing(&grades, &mut scratch), "{}", agg.name());
        }
    }

    #[test]
    fn tconorm_axioms_at_random_points(x in grade(), y in grade(), z in grade()) {
        for s in all_tconorms() {
            prop_assert!(s.s(x, y).approx_eq(s.s(y, x), EPS), "{}", s.name());
            prop_assert!(
                s.s(s.s(x, y), z).approx_eq(s.s(x, s.s(y, z)), EPS),
                "{}", s.name()
            );
            prop_assert!(s.s(x, Grade::ZERO).approx_eq(x, EPS), "{}", s.name());
        }
    }

    #[test]
    fn norms_monotone_at_random_points(x in grade(), y in grade(), x2 in grade()) {
        let (lo, hi) = if x <= x2 { (x, x2) } else { (x2, x) };
        for t in all_tnorms() {
            prop_assert!(
                t.t(lo, y).value() <= t.t(hi, y).value() + EPS,
                "{}", t.name()
            );
        }
        for s in all_tconorms() {
            prop_assert!(
                s.s(lo, y).value() <= s.s(hi, y).value() + EPS,
                "{}", s.name()
            );
        }
    }

    #[test]
    fn paper_duality_pairs_at_random_points(x in grade(), y in grade()) {
        // s(x, y) = 1 - t(1-x, 1-y) for every named pair \[Al85\].
        let pairs = all_tnorms().into_iter().zip(all_tconorms());
        for (t, s) in pairs {
            let dual = DualCoNorm::standard(&*t);
            use garlic_agg::TCoNorm;
            prop_assert!(
                s.s(x, y).approx_eq(dual.s(x, y), EPS),
                "{} vs dual of {}", s.name(), t.name()
            );
        }
    }

    #[test]
    fn negations_are_involutive_and_antitone(x in grade(), y in grade()) {
        let negs: Vec<Box<dyn Negation>> = vec![
            Box::new(StandardNegation),
            Box::new(SugenoNegation::new(2.0)),
            Box::new(SugenoNegation::new(-0.5)),
            Box::new(YagerNegation::new(3.0)),
        ];
        for n in negs {
            prop_assert!(n.negate(n.negate(x)).approx_eq(x, 1e-6), "{}", n.name());
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            prop_assert!(
                n.negate(hi).value() <= n.negate(lo).value() + EPS,
                "{}", n.name()
            );
        }
    }

    #[test]
    fn iterated_tnorms_bounded_by_min_of_args(
        gs in proptest::collection::vec(grade(), 1..6)
    ) {
        let least = gs.iter().copied().min().unwrap();
        for agg in all_iterated_tnorms() {
            let v = agg.combine(&gs);
            prop_assert!(v.value() <= least.value() + EPS, "{}", agg.name());
        }
    }

    #[test]
    fn fagin_wimmers_is_bounded_by_best_and_worst(
        gs in proptest::collection::vec(grade(), 1..5),
        ws in proptest::collection::vec(0.01f64..5.0, 5)
    ) {
        // With base = min: min(all) <= W <= max single argument (W is a
        // convex combination of prefix minima).
        let m = gs.len();
        let agg = FaginWimmers::new(min_agg(), &ws[..m]);
        let v = agg.combine(&gs).value();
        let lo = gs.iter().copied().min().unwrap().value();
        let hi = gs.iter().copied().max().unwrap().value();
        prop_assert!(lo - EPS <= v && v <= hi + EPS);
    }

    #[test]
    fn fagin_wimmers_equal_weights_recover_base(
        gs in proptest::collection::vec(grade(), 1..5)
    ) {
        let m = gs.len();
        let agg = FaginWimmers::new(min_agg(), &vec![1.0; m]);
        prop_assert!(agg.combine(&gs).approx_eq(min_agg().combine(&gs), EPS));
    }

    #[test]
    fn iterated_agrees_with_pairwise_fold(x in grade(), y in grade(), z in grade()) {
        // The m-ary iterated norm is literally t(t(x, y), z) — Section 3's
        // construction.
        for t in all_tnorms() {
            let folded = t.t(t.t(x, y), z);
            let via_agg = IteratedTNorm(&*t).combine(&[x, y, z]);
            prop_assert!(folded.approx_eq(via_agg, EPS), "{}", t.name());
        }
    }
}
