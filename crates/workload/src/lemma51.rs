//! The probabilistic machinery inside Lemma 5.1's proof.
//!
//! The lemma bounds `Pr[|B1 ∩ B2| <= M/2] < e^{−M/10}` (with `M = l1·l2/N`
//! the expected intersection size) through a chain of four coin-flipping
//! processes:
//!
//! 1. **Process 1** — sequential sampling without replacement: the j-th coin
//!    is heads with probability `max[(l2−h)/(N−h−t), 0]` given `h` heads
//!    and `t` tails so far. Heads count is distributed exactly like
//!    `|B1 ∩ B2|`.
//! 2. **Process 2** — the same, but the probability is floored at
//!    `(l2−a)/(N−a)` where `a = ⌊M/2⌋`; identical tail-at-most-`a`
//!    probability (statement B of the proof).
//! 3. **Process 3** — iid coins at `(l2−a)/(N−a)` (statement C: tail can
//!    only grow).
//! 4. **Process 4** — iid coins at `(19/20)·l2/N` (statement D), whose tail
//!    the Angluin–Valiant Chernoff bound caps by `e^{−M/10}` (statement E).
//!
//! This module implements all four processes plus a direct
//! `|B1 ∩ B2|` sampler, so the domination chain
//! `P1 = P2 <= P3 <= P4 < e^{−M/10}` can be verified empirically
//! (experiment E16 and the tests below).

use rand::Rng;

/// Parameters of Lemma 5.1: `B1` a fixed set of `l1` members of `{1..N}`,
/// `B2` a uniformly random set of `l2` members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lemma51Params {
    /// Universe size `N`.
    pub n: usize,
    /// Size of the fixed set `B1`.
    pub l1: usize,
    /// Size of the random set `B2`.
    pub l2: usize,
}

impl Lemma51Params {
    /// Creates the parameters; requires `l1, l2 <= N` and `N >= 1`.
    ///
    /// # Panics
    /// Panics if the sizes are inconsistent.
    pub fn new(n: usize, l1: usize, l2: usize) -> Self {
        assert!(n >= 1 && l1 <= n && l2 <= n, "need l1, l2 <= N");
        Lemma51Params { n, l1, l2 }
    }

    /// The expected intersection size `M = l1·l2/N`.
    pub fn expected_intersection(&self) -> f64 {
        self.l1 as f64 * self.l2 as f64 / self.n as f64
    }

    /// The threshold `a = ⌊M/2⌋` of the proof.
    pub fn a(&self) -> usize {
        (self.expected_intersection() / 2.0).floor() as usize
    }

    /// The lemma's bound `e^{−M/10}` on `Pr[|B| <= M/2]`.
    pub fn bound(&self) -> f64 {
        (-self.expected_intersection() / 10.0).exp()
    }

    /// Whether the lemma's hypothesis `l1 <= N/10` holds. Statement D of
    /// the proof (process 3's heads probability dominating process 4's)
    /// *requires* it; experiment E16 demonstrates the chain breaking
    /// without it.
    pub fn satisfies_hypothesis(&self) -> bool {
        self.l1 as f64 <= self.n as f64 / 10.0
    }
}

/// Samples `|B1 ∩ B2|` directly: count how many of `l1` marked objects fall
/// into a uniformly random `l2`-subset.
pub fn sample_intersection(p: Lemma51Params, rng: &mut impl Rng) -> usize {
    // Floyd-style sampling of B2 then membership count would need a set;
    // equivalently, walk B1's elements with the process-1 dynamics (exact
    // by exchangeability) — but to keep this sampler independent of the
    // process implementation, do an explicit partial Fisher–Yates.
    let mut universe: Vec<usize> = (0..p.n).collect();
    for i in 0..p.l2 {
        let j = rng.gen_range(i..p.n);
        universe.swap(i, j);
    }
    // B1 = {0, .., l1-1} WLOG (B2 is uniform, so any fixed B1 is equivalent).
    universe[..p.l2].iter().filter(|&&x| x < p.l1).count()
}

/// Process 1: sequential without-replacement membership coins.
pub fn process1_heads(p: Lemma51Params, rng: &mut impl Rng) -> usize {
    let (mut h, mut t) = (0usize, 0usize);
    for _ in 0..p.l1 {
        let remaining = p.n - h - t;
        let prob = if remaining == 0 {
            0.0
        } else {
            ((p.l2 as f64 - h as f64) / remaining as f64).max(0.0)
        };
        if rng.gen::<f64>() < prob {
            h += 1;
        } else {
            t += 1;
        }
    }
    h
}

/// Process 2: like process 1 but with the probability floored at
/// `(l2−a)/(N−a)`.
pub fn process2_heads(p: Lemma51Params, rng: &mut impl Rng) -> usize {
    let a = p.a();
    let floor = (p.l2 as f64 - a as f64) / (p.n as f64 - a as f64);
    let (mut h, mut t) = (0usize, 0usize);
    for _ in 0..p.l1 {
        let remaining = p.n - h - t;
        let without_replacement = if remaining == 0 {
            0.0
        } else {
            (p.l2 as f64 - h as f64) / remaining as f64
        };
        let prob = without_replacement.max(floor);
        if rng.gen::<f64>() < prob {
            h += 1;
        } else {
            t += 1;
        }
    }
    h
}

/// Process 3: iid coins at `(l2−a)/(N−a)`.
pub fn process3_heads(p: Lemma51Params, rng: &mut impl Rng) -> usize {
    let a = p.a();
    let prob = (p.l2 as f64 - a as f64) / (p.n as f64 - a as f64);
    (0..p.l1).filter(|_| rng.gen::<f64>() < prob).count()
}

/// Process 4: iid coins at `(19/20)·l2/N`.
pub fn process4_heads(p: Lemma51Params, rng: &mut impl Rng) -> usize {
    let prob = (19.0 / 20.0) * p.l2 as f64 / p.n as f64;
    (0..p.l1).filter(|_| rng.gen::<f64>() < prob).count()
}

/// Empirical `Pr[heads <= a]` over `trials` runs of a process.
pub fn tail_at_most(
    process: impl Fn(Lemma51Params, &mut rand::rngs::StdRng) -> usize,
    p: Lemma51Params,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = crate::seeded_rng(seed);
    let a = p.a();
    let hits = (0..trials).filter(|_| process(p, &mut rng) <= a).count();
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Lemma51Params {
        // N = 1000, l1 = l2 = 100 → M = 10, a = 5, bound = e^{-1} ≈ 0.37.
        Lemma51Params::new(1000, 100, 100)
    }

    #[test]
    fn derived_quantities() {
        let p = params();
        assert_eq!(p.expected_intersection(), 10.0);
        assert_eq!(p.a(), 5);
        assert!((p.bound() - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn process1_matches_direct_intersection_in_mean() {
        let p = params();
        let trials = 4000;
        let mut rng = crate::seeded_rng(1);
        let mean1: f64 = (0..trials)
            .map(|_| process1_heads(p, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let mut rng = crate::seeded_rng(2);
        let mean_direct: f64 = (0..trials)
            .map(|_| sample_intersection(p, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean1 - 10.0).abs() < 0.5, "process1 mean {mean1}");
        assert!(
            (mean_direct - 10.0).abs() < 0.5,
            "direct mean {mean_direct}"
        );
    }

    #[test]
    fn domination_chain_holds_empirically() {
        // Statements A–E of the proof:
        // P[P1 <= a] == P[P2 <= a] <= P[P3 <= a] <= P[P4 <= a] < e^{-M/10}.
        let p = params();
        let trials = 6000;
        let p1 = tail_at_most(process1_heads, p, trials, 10);
        let p2 = tail_at_most(process2_heads, p, trials, 11);
        let p3 = tail_at_most(process3_heads, p, trials, 12);
        let p4 = tail_at_most(process4_heads, p, trials, 13);
        let noise = 0.03; // ~3 sigma at these trial counts
        assert!((p1 - p2).abs() < noise, "P1 {p1} vs P2 {p2}");
        assert!(p2 <= p3 + noise, "P2 {p2} vs P3 {p3}");
        assert!(p3 <= p4 + noise, "P3 {p3} vs P4 {p4}");
        assert!(p4 < p.bound(), "P4 {p4} vs bound {}", p.bound());
    }

    #[test]
    fn lemma_bound_holds_for_direct_sampling() {
        let p = params();
        let tail = tail_at_most(sample_intersection, p, 6000, 14);
        assert!(
            tail < p.bound(),
            "direct tail {tail} vs bound {}",
            p.bound()
        );
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_sets() {
        Lemma51Params::new(10, 11, 5);
    }
}
