//! # garlic-workload — the probabilistic framework of Fagin (PODS 1996), §5–§7
//!
//! Everything the experiments need to *instantiate* the paper's formal
//! model:
//!
//! * [`perm`] / [`skeleton`] — permutations and skeletons; a random skeleton
//!   (m independent uniform permutations) is the paper's formalisation of
//!   "the atomic queries are independent";
//! * [`distributions`] — grade shapes laid along each list (uniform,
//!   bounded, crisp, tie-heavy, deterministic);
//! * [`scoring`] — scoring databases: skeleton + grades → the
//!   `MemorySource`s the algorithms consume;
//! * [`correlation`] — correlated and adversarial workloads, including the
//!   exact `Q ∧ ¬Q` hard instance of Section 7.
//!
//! ```
//! use garlic_workload::{skeleton::Skeleton, scoring::ScoringDatabase,
//!                       distributions::UniformGrades};
//! use garlic_core::algorithms::fa::fagin_topk;
//! use garlic_agg::iterated::min_agg;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1996);
//! let skeleton = Skeleton::random(2, 1000, &mut rng);     // m = 2, N = 1000
//! let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
//! let top = fagin_topk(&db.to_sources(), &min_agg(), 10).unwrap();
//! assert_eq!(top.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod distributions;
pub mod lemma51;
pub mod perm;
pub mod scoring;
pub mod skeleton;

pub use perm::Permutation;
pub use scoring::ScoringDatabase;
pub use skeleton::Skeleton;

/// A deterministically seeded RNG for reproducible workloads.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
