//! Skeletons — the combinatorial heart of the Section 5 framework.
//!
//! "We define a *skeleton* (on N objects) to be a function associating with
//! each i (for i = 1, ..., m) a permutation of 1, ..., N." Probabilistic
//! statements about algorithm cost are made by drawing each of the `m`
//! permutations independently and uniformly — the formalisation of "the
//! atomic queries are independent".

use garlic_core::ObjectId;
use rand::Rng;

use crate::perm::Permutation;

/// A skeleton on `n` objects: one sorted-access order per atomic query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    perms: Vec<Permutation>,
}

impl Skeleton {
    /// Builds a skeleton from per-list permutations.
    ///
    /// # Panics
    /// Panics if the permutations disagree on `n` or none are given.
    pub fn new(perms: Vec<Permutation>) -> Self {
        assert!(!perms.is_empty(), "a skeleton needs at least one list");
        let n = perms[0].len();
        assert!(
            perms.iter().all(|p| p.len() == n),
            "all lists must order the same universe"
        );
        Skeleton { perms }
    }

    /// The independence model: `m` independent uniformly random
    /// permutations of `n` objects.
    pub fn random(m: usize, n: usize, rng: &mut impl Rng) -> Self {
        Skeleton::new((0..m).map(|_| Permutation::random(n, rng)).collect())
    }

    /// Number of lists `m`.
    pub fn m(&self) -> usize {
        self.perms.len()
    }

    /// Number of objects `n`.
    pub fn n(&self) -> usize {
        self.perms[0].len()
    }

    /// The sorted order of list `i`.
    pub fn list(&self, i: usize) -> &Permutation {
        &self.perms[i]
    }

    /// All lists.
    pub fn lists(&self) -> &[Permutation] {
        &self.perms
    }

    /// The paper's `X^i_t` projection: the set of objects in the top `t` of
    /// list `i`.
    pub fn prefix(&self, i: usize, t: usize) -> Vec<ObjectId> {
        self.perms[i].iter().take(t).collect()
    }

    /// `|∩ᵢ X^i_t|`: how many objects appear in the top `t` of *every*
    /// list. This is the quantity both bounds revolve around — algorithm A₀
    /// stops at the least `T` where it reaches `k` (Lemma 6.2 shows any
    /// correct algorithm for a strict query must also reach it, absent a
    /// linear-cost escape hatch).
    pub fn intersection_size(&self, t: usize) -> usize {
        let n = self.n();
        let t = t.min(n);
        let mut count = vec![0u32; n];
        let mut matched = 0usize;
        for perm in &self.perms {
            for rank in 0..t {
                let idx = perm.object_at(rank).index();
                count[idx] += 1;
                if count[idx] as usize == self.m() {
                    matched += 1;
                }
            }
        }
        matched
    }

    /// Extracts the skeleton of a scoring database: each list's sorted
    /// order (ties broken by object id, matching the deterministic order
    /// [`garlic_core::graded_set::GradedSet`] exposes). Lets the
    /// intersection-depth analysis (`matching_depth`) run on *correlated*
    /// databases, not just generated skeletons.
    pub fn from_scoring_database(db: &crate::scoring::ScoringDatabase) -> Self {
        Skeleton::new(
            db.lists()
                .iter()
                .map(|list| Permutation::from_order(list.iter().map(|e| e.object).collect()))
                .collect(),
        )
    }

    /// The least depth `T*` such that `|∩ᵢ X^i_T| >= k` — the
    /// information-theoretic stopping depth measured by experiment E05.
    pub fn matching_depth(&self, k: usize) -> usize {
        assert!(k >= 1 && k <= self.n(), "need 1 <= k <= N");
        let n = self.n();
        let mut count = vec![0u32; n];
        let mut matched = 0usize;
        for depth in 0..n {
            for perm in &self.perms {
                let idx = perm.object_at(depth).index();
                count[idx] += 1;
                if count[idx] as usize == self.m() {
                    matched += 1;
                }
            }
            if matched >= k {
                return depth + 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skeleton() -> Skeleton {
        // List 0: 0,1,2,3.  List 1: 3,2,1,0.
        Skeleton::new(vec![
            Permutation::identity(4),
            Permutation::identity(4).reversed(),
        ])
    }

    #[test]
    fn intersection_sizes_hand_checked() {
        let s = skeleton();
        assert_eq!(s.intersection_size(0), 0);
        assert_eq!(s.intersection_size(1), 0); // {0} ∩ {3}
        assert_eq!(s.intersection_size(2), 0); // {0,1} ∩ {3,2}
        assert_eq!(s.intersection_size(3), 2); // {0,1,2} ∩ {3,2,1} = {1,2}
        assert_eq!(s.intersection_size(4), 4);
        assert_eq!(s.intersection_size(9), 4); // clamps at n
    }

    #[test]
    fn matching_depth_is_least_t() {
        let s = skeleton();
        assert_eq!(s.matching_depth(1), 3);
        assert_eq!(s.matching_depth(2), 3);
        assert_eq!(s.matching_depth(3), 4);
        assert_eq!(s.matching_depth(4), 4);
    }

    #[test]
    fn matching_depth_consistent_with_intersection() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = Skeleton::random(3, 60, &mut rng);
        for k in [1, 5, 20, 60] {
            let t = s.matching_depth(k);
            assert!(s.intersection_size(t) >= k);
            if t > 0 {
                assert!(s.intersection_size(t - 1) < k);
            }
        }
    }

    #[test]
    fn random_skeleton_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = Skeleton::random(4, 25, &mut rng);
        assert_eq!(s.m(), 4);
        assert_eq!(s.n(), 25);
        assert_eq!(s.prefix(2, 3).len(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_lists_rejected() {
        Skeleton::new(vec![Permutation::identity(3), Permutation::identity(4)]);
    }

    #[test]
    fn skeleton_round_trips_through_scoring_database() {
        use crate::distributions::StridedGrades;
        use crate::scoring::ScoringDatabase;
        let mut rng = StdRng::seed_from_u64(17);
        let original = Skeleton::random(3, 30, &mut rng);
        // Strided grades are strictly decreasing, so the db's sorted order
        // is exactly the skeleton.
        let db = ScoringDatabase::from_skeleton(&original, &StridedGrades, &mut rng);
        let recovered = Skeleton::from_scoring_database(&db);
        assert_eq!(recovered, original);
    }

    #[test]
    fn hard_query_skeleton_matches_theory() {
        // The §7 instance: matching depth for k = 1 is ⌈(N+1)/2⌉ because
        // the lists are exact reverses of each other.
        use crate::correlation::hard_query_database;
        let mut rng = StdRng::seed_from_u64(23);
        for n in [11usize, 100, 501] {
            let db = hard_query_database(n, &mut rng);
            let skeleton = Skeleton::from_scoring_database(&db);
            assert_eq!(skeleton.matching_depth(1), n / 2 + 1, "n = {n}");
        }
    }
}
