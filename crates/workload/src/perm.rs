//! Permutations of the object universe.
//!
//! Section 5 defines a *skeleton* as one permutation of `1..N` per atomic
//! query — the sorted-access order of each list. This module provides the
//! permutation building block.

use garlic_core::ObjectId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation of the objects `0..n`: position `rank` holds the object at
/// that rank of the sorted order (rank 0 = best grade).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    order: Vec<ObjectId>,
}

impl Permutation {
    /// The identity permutation on `n` objects.
    pub fn identity(n: usize) -> Self {
        Permutation {
            order: (0..n as u64).map(ObjectId).collect(),
        }
    }

    /// A uniformly random permutation of `n` objects — the paper's model of
    /// one independent atomic query ("each permutation of 1..N has equal
    /// probability").
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        let mut order: Vec<ObjectId> = (0..n as u64).map(ObjectId).collect();
        order.shuffle(rng);
        Permutation { order }
    }

    /// Builds from an explicit rank → object assignment.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<ObjectId>) -> Self {
        let n = order.len();
        let mut seen = vec![false; n];
        for id in &order {
            let idx = id.index();
            assert!(idx < n, "object {id} out of range for n = {n}");
            assert!(!seen[idx], "object {id} appears twice");
            seen[idx] = true;
        }
        Permutation { order }
    }

    /// The reversed permutation — the sorted order of `¬Q` when this is the
    /// sorted order of `Q` (Section 7: `π_{¬Q}(x) = π_Q(N + 1 − x)`).
    pub fn reversed(&self) -> Self {
        Permutation {
            order: self.order.iter().rev().copied().collect(),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the permutation is over an empty universe.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The object at `rank` (0-based; rank 0 is the top of the list).
    pub fn object_at(&self, rank: usize) -> ObjectId {
        self.order[rank]
    }

    /// Iterates objects from rank 0 downwards.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.order.iter().copied()
    }

    /// The inverse map: `ranks()[object.index()]` is the object's rank.
    pub fn ranks(&self) -> Vec<usize> {
        let mut ranks = vec![0usize; self.order.len()];
        for (rank, id) in self.order.iter().enumerate() {
            ranks[id.index()] = rank;
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_ranks() {
        let p = Permutation::identity(4);
        assert_eq!(p.object_at(2), ObjectId(2));
        assert_eq!(p.ranks(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn reversed_flips_ranks() {
        let p = Permutation::identity(4).reversed();
        assert_eq!(p.object_at(0), ObjectId(3));
        assert_eq!(p.ranks(), vec![3, 2, 1, 0]);
        assert_eq!(p.reversed(), Permutation::identity(4));
    }

    #[test]
    fn random_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Permutation::random(100, &mut rng);
        let mut objs: Vec<_> = p.iter().collect();
        objs.sort();
        assert_eq!(objs, Permutation::identity(100).iter().collect::<Vec<_>>());
    }

    #[test]
    fn random_is_seeded_deterministically() {
        let a = Permutation::random(50, &mut StdRng::seed_from_u64(1));
        let b = Permutation::random(50, &mut StdRng::seed_from_u64(1));
        let c = Permutation::random(50, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic]
    fn from_order_rejects_duplicates() {
        Permutation::from_order(vec![ObjectId(0), ObjectId(0)]);
    }

    #[test]
    #[should_panic]
    fn from_order_rejects_out_of_range() {
        Permutation::from_order(vec![ObjectId(5)]);
    }
}
