//! Scoring databases — "a function associating with each i (for i = 1, ...,
//! m) a graded set" (Section 5).
//!
//! A [`ScoringDatabase`] is built from a [`Skeleton`] (who is ranked where)
//! plus a [`GradeDistribution`] (what the grades along each list look like),
//! and converts into the [`MemorySource`]s the algorithms consume.

use garlic_agg::Grade;
use garlic_core::access::MemorySource;
use garlic_core::graded_set::GradedSet;
use rand::Rng;

use crate::distributions::GradeDistribution;
use crate::skeleton::Skeleton;

/// `m` graded sets over a common universe of `n` objects.
#[derive(Debug, Clone)]
pub struct ScoringDatabase {
    lists: Vec<GradedSet>,
    n: usize,
}

impl ScoringDatabase {
    /// Builds from explicit graded sets.
    ///
    /// # Panics
    /// Panics if the lists are empty or grade different universe sizes.
    pub fn new(lists: Vec<GradedSet>) -> Self {
        assert!(!lists.is_empty(), "need at least one list");
        let n = lists[0].len();
        assert!(
            lists.iter().all(|l| l.len() == n),
            "all lists must grade the same universe"
        );
        ScoringDatabase { lists, n }
    }

    /// Lays a grade distribution over a skeleton: rank `r` of list `i`
    /// receives the `r`-th descending grade. The resulting database is
    /// consistent with the skeleton (exactly, when grades are tie-free).
    pub fn from_skeleton(
        skeleton: &Skeleton,
        dist: &dyn GradeDistribution,
        rng: &mut impl Rng,
    ) -> Self {
        let n = skeleton.n();
        let lists = skeleton
            .lists()
            .iter()
            .map(|perm| {
                let grades = dist.descending_grades(n, rng);
                debug_assert_eq!(grades.len(), n);
                GradedSet::from_pairs(perm.iter().zip(grades.iter().copied()))
            })
            .collect();
        ScoringDatabase::new(lists)
    }

    /// Like [`ScoringDatabase::from_skeleton`] but with a distinct
    /// distribution per list (e.g. Section 9's bounded-vs-uniform setup).
    pub fn from_skeleton_per_list(
        skeleton: &Skeleton,
        dists: &[&dyn GradeDistribution],
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(
            dists.len(),
            skeleton.m(),
            "one distribution per list required"
        );
        let n = skeleton.n();
        let lists = skeleton
            .lists()
            .iter()
            .zip(dists)
            .map(|(perm, dist)| {
                let grades = dist.descending_grades(n, rng);
                GradedSet::from_pairs(perm.iter().zip(grades.iter().copied()))
            })
            .collect();
        ScoringDatabase::new(lists)
    }

    /// Builds directly from per-object grade vectors: `grades[i][x]` is
    /// object `x`'s grade in list `i`.
    pub fn from_object_grades(grades: &[Vec<Grade>]) -> Self {
        ScoringDatabase::new(grades.iter().map(|g| GradedSet::from_grades(g)).collect())
    }

    /// Number of lists `m`.
    pub fn m(&self) -> usize {
        self.lists.len()
    }

    /// Universe size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The graded sets.
    pub fn lists(&self) -> &[GradedSet] {
        &self.lists
    }

    /// Converts into the sources the algorithms consume.
    pub fn to_sources(&self) -> Vec<MemorySource> {
        self.lists
            .iter()
            .map(|l| MemorySource::new(l.clone()))
            .collect()
    }

    /// Checks consistency with a skeleton: each list's grades, read in the
    /// skeleton's order, must be non-increasing ("the i-th permutation in S
    /// gives a sorting of the i-th graded set").
    pub fn consistent_with(&self, skeleton: &Skeleton) -> bool {
        if skeleton.m() != self.m() || skeleton.n() != self.n {
            return false;
        }
        self.lists.iter().zip(skeleton.lists()).all(|(list, perm)| {
            let map = list.to_map();
            let mut prev = Grade::ONE;
            perm.iter().all(|id| {
                let g = map[&id];
                let ok = g <= prev;
                prev = g;
                ok
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{StridedGrades, UniformGrades};
    use crate::perm::Permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn from_skeleton_is_consistent() {
        let skeleton = Skeleton::random(3, 40, &mut rng());
        let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng());
        assert_eq!(db.m(), 3);
        assert_eq!(db.n(), 40);
        assert!(db.consistent_with(&skeleton));
    }

    #[test]
    fn strided_grades_follow_skeleton_exactly() {
        let skeleton = Skeleton::new(vec![
            Permutation::identity(4).reversed(),
            Permutation::identity(4),
        ]);
        let db = ScoringDatabase::from_skeleton(&skeleton, &StridedGrades, &mut rng());
        let sources = db.to_sources();
        // List 0's top object must be skeleton list 0's rank-0 object (3).
        use garlic_core::GradedSource;
        assert_eq!(
            sources[0].sorted_access(0).unwrap().object,
            garlic_core::ObjectId(3)
        );
        assert_eq!(
            sources[1].sorted_access(0).unwrap().object,
            garlic_core::ObjectId(0)
        );
    }

    #[test]
    fn inconsistent_skeleton_detected() {
        let skeleton = Skeleton::new(vec![Permutation::identity(4)]);
        let wrong = Skeleton::new(vec![Permutation::identity(4).reversed()]);
        let db = ScoringDatabase::from_skeleton(&skeleton, &StridedGrades, &mut rng());
        assert!(db.consistent_with(&skeleton));
        assert!(!db.consistent_with(&wrong));
    }

    #[test]
    fn from_object_grades_round_trips() {
        let g = |v: f64| Grade::new(v).unwrap();
        let db = ScoringDatabase::from_object_grades(&[vec![g(0.1), g(0.9)], vec![g(0.8), g(0.2)]]);
        let sources = db.to_sources();
        use garlic_core::GradedSource;
        assert_eq!(
            sources[0].random_access(garlic_core::ObjectId(1)),
            Some(g(0.9))
        );
        assert_eq!(
            sources[1].random_access(garlic_core::ObjectId(1)),
            Some(g(0.2))
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_universe_rejected() {
        let g = |v: f64| Grade::new(v).unwrap();
        ScoringDatabase::from_object_grades(&[vec![g(0.1)], vec![g(0.1), g(0.2)]]);
    }
}
