//! Grade distributions: how grades are laid down along a list's sorted
//! order.
//!
//! A scoring database is a skeleton plus, per list, a descending sequence of
//! grades. Different experiments need different grade shapes:
//!
//! * [`UniformGrades`] — iid `U[0,1]` order statistics (the default
//!   independence model, and the "both uniform" regime of Section 9);
//! * [`BoundedGrades`] — grades capped below 1 (the "grades of A₁ bounded
//!   by 0.9" regime that makes Ullman's algorithm O(1), Section 9);
//! * [`CrispGrades`] — a block of 1s followed by 0s (a traditional
//!   relational predicate with a given selectivity, Section 2);
//! * [`StridedGrades`] — deterministic, strictly decreasing, evenly spaced
//!   (tie-free and reproducible without an RNG);
//! * [`QuantizedGrades`] — heavily tied grades (stress-tests tie handling).

use garlic_agg::Grade;
use rand::Rng;

/// A generator of one list's grades in descending rank order.
pub trait GradeDistribution {
    /// Produces `n` grades, descending (`out[0]` is rank 0's grade).
    fn descending_grades(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<Grade>;

    /// Display name for tables.
    fn name(&self) -> String;
}

/// iid `U[0,1]` grades, sorted descending.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformGrades;

impl GradeDistribution for UniformGrades {
    fn descending_grades(&self, n: usize, mut rng: &mut dyn rand::RngCore) -> Vec<Grade> {
        let mut v: Vec<Grade> = (0..n).map(|_| Grade::clamped(rng.gen::<f64>())).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
    fn name(&self) -> String {
        "uniform".to_owned()
    }
}

/// iid `U[0, max]` grades, sorted descending — Section 9's bounded regime.
#[derive(Debug, Clone, Copy)]
pub struct BoundedGrades {
    max: f64,
}

impl BoundedGrades {
    /// Creates the distribution; `max` must lie in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `max` is outside `(0, 1]`.
    pub fn new(max: f64) -> Self {
        assert!(max > 0.0 && max <= 1.0, "max must be in (0, 1]");
        BoundedGrades { max }
    }
}

impl GradeDistribution for BoundedGrades {
    fn descending_grades(&self, n: usize, mut rng: &mut dyn rand::RngCore) -> Vec<Grade> {
        let mut v: Vec<Grade> = (0..n)
            .map(|_| Grade::clamped(rng.gen::<f64>() * self.max))
            .collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
    fn name(&self) -> String {
        format!("uniform[0,{}]", self.max)
    }
}

/// Crisp grades: the first `⌈selectivity · n⌉` ranks grade 1, the rest 0 —
/// a traditional database predicate.
#[derive(Debug, Clone, Copy)]
pub struct CrispGrades {
    selectivity: f64,
}

impl CrispGrades {
    /// Creates the distribution; `selectivity` must lie in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `selectivity` is outside `[0, 1]`.
    pub fn new(selectivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&selectivity),
            "selectivity must be in [0, 1]"
        );
        CrispGrades { selectivity }
    }

    /// How many objects match at universe size `n`.
    pub fn matches(&self, n: usize) -> usize {
        ((self.selectivity * n as f64).ceil() as usize).min(n)
    }
}

impl GradeDistribution for CrispGrades {
    fn descending_grades(&self, n: usize, _rng: &mut dyn rand::RngCore) -> Vec<Grade> {
        let ones = self.matches(n);
        let mut v = vec![Grade::ONE; ones];
        v.resize(n, Grade::ZERO);
        v
    }
    fn name(&self) -> String {
        format!("crisp(p={})", self.selectivity)
    }
}

/// Deterministic, strictly decreasing grades `1, (n-1)/n, ..., 1/n` —
/// tie-free, no RNG involved.
#[derive(Debug, Clone, Copy, Default)]
pub struct StridedGrades;

impl GradeDistribution for StridedGrades {
    fn descending_grades(&self, n: usize, _rng: &mut dyn rand::RngCore) -> Vec<Grade> {
        (0..n)
            .map(|rank| Grade::clamped((n - rank) as f64 / n as f64))
            .collect()
    }
    fn name(&self) -> String {
        "strided".to_owned()
    }
}

/// Uniform grades quantised to `levels` distinct values — many ties.
#[derive(Debug, Clone, Copy)]
pub struct QuantizedGrades {
    levels: usize,
}

impl QuantizedGrades {
    /// Creates the distribution with at least two levels.
    ///
    /// # Panics
    /// Panics if `levels < 2`.
    pub fn new(levels: usize) -> Self {
        assert!(levels >= 2, "need at least two levels");
        QuantizedGrades { levels }
    }
}

impl GradeDistribution for QuantizedGrades {
    fn descending_grades(&self, n: usize, mut rng: &mut dyn rand::RngCore) -> Vec<Grade> {
        let q = (self.levels - 1) as f64;
        let mut v: Vec<Grade> = (0..n)
            .map(|_| Grade::clamped((rng.gen::<f64>() * q).round() / q))
            .collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
    fn name(&self) -> String {
        format!("quantized({})", self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn assert_descending(v: &[Grade]) {
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn uniform_descending_in_range() {
        let v = UniformGrades.descending_grades(500, &mut rng());
        assert_eq!(v.len(), 500);
        assert_descending(&v);
    }

    #[test]
    fn bounded_respects_cap() {
        let v = BoundedGrades::new(0.9).descending_grades(500, &mut rng());
        assert_descending(&v);
        assert!(v.iter().all(|g| g.value() <= 0.9));
    }

    #[test]
    fn crisp_block_structure() {
        let v = CrispGrades::new(0.25).descending_grades(8, &mut rng());
        assert_eq!(v.iter().filter(|g| **g == Grade::ONE).count(), 2);
        assert_eq!(v.iter().filter(|g| **g == Grade::ZERO).count(), 6);
        assert_descending(&v);
    }

    #[test]
    fn crisp_edge_selectivities() {
        assert!(CrispGrades::new(0.0)
            .descending_grades(4, &mut rng())
            .iter()
            .all(|g| *g == Grade::ZERO));
        assert!(CrispGrades::new(1.0)
            .descending_grades(4, &mut rng())
            .iter()
            .all(|g| *g == Grade::ONE));
    }

    #[test]
    fn strided_is_strictly_decreasing() {
        let v = StridedGrades.descending_grades(10, &mut rng());
        assert!(v.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(v[0], Grade::ONE);
    }

    #[test]
    fn quantized_has_ties() {
        let v = QuantizedGrades::new(4).descending_grades(200, &mut rng());
        assert_descending(&v);
        let distinct: std::collections::BTreeSet<_> =
            v.iter().map(|g| (g.value() * 3.0).round() as u8).collect();
        assert!(distinct.len() <= 4);
    }

    #[test]
    #[should_panic]
    fn bounded_rejects_zero_max() {
        BoundedGrades::new(0.0);
    }
}
