//! Correlated workloads (Section 7's discussion and the hard instance).
//!
//! The paper's upper bound assumes independent lists; Section 7 observes
//! that positive correlation "can only help the efficiency" while negative
//! correlation hurts, with the extreme case `Q ∧ ¬Q` — list 2 the exact
//! reverse of list 1 — provably costing Θ(N). This module generates all
//! three regimes:
//!
//! * [`latent_database`] — a latent-factor model whose mixing weight sweeps
//!   rank correlation continuously from `-1` (reversed) through `0`
//!   (independent) to `+1` (identical);
//! * [`hard_query_database`] — the exact Section 7 adversarial pair, where
//!   each object `x` has grades `(μ_Q(x), 1 − μ_Q(x))` and grades are
//!   pairwise distinct;
//! * [`spearman_rho`] — a rank-correlation estimator used to verify the
//!   generators.

use garlic_agg::Grade;
use garlic_core::ObjectId;
use rand::Rng;

use crate::scoring::ScoringDatabase;

/// Generates an `m`-list database over `n` objects with tunable pairwise
/// rank correlation `rho ∈ [-1, 1]` between list 0 and every other list.
///
/// Each object draws a latent score `u ~ U[0,1]` plus per-list independent
/// noise `v_i`; list `i`'s raw score mixes the two as
/// `w·base + (1−w)·v_i` with `w = |rho|`, where `base = u` for `rho >= 0`
/// and `1 − u` for `rho < 0` on lists `i >= 1` (list 0 always uses `u`).
///
/// # Panics
/// Panics if `rho` is outside `[-1, 1]`, or if `rho < 0` with `m > 2`
/// (mutual negative correlation of three or more lists is not realisable at
/// full strength).
pub fn latent_database(m: usize, n: usize, rho: f64, rng: &mut impl Rng) -> ScoringDatabase {
    assert!((-1.0..=1.0).contains(&rho), "rho must be in [-1, 1]");
    assert!(
        rho >= 0.0 || m == 2,
        "negative correlation is only meaningful for m = 2"
    );
    let w = rho.abs();
    let latent: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let mut lists: Vec<Vec<Grade>> = Vec::with_capacity(m);
    for i in 0..m {
        let mut grades = Vec::with_capacity(n);
        for &u in &latent {
            let base = if rho < 0.0 && i >= 1 { 1.0 - u } else { u };
            let noise: f64 = rng.gen();
            grades.push(Grade::clamped(w * base + (1.0 - w) * noise));
        }
        lists.push(grades);
    }
    ScoringDatabase::from_object_grades(&lists)
}

/// The Section 7 hard instance for `Q ∧ ¬Q`: every object `x` gets a
/// distinct grade `μ_Q(x)`, list 1 carries `μ_Q`, list 2 carries
/// `1 − μ_Q`, so list 2's sorted order is the exact reverse of list 1's
/// (`π_{¬Q}(x) = π_Q(N + 1 − x)`).
///
/// Grades are sampled uniformly then perturbed to distinctness; the unique
/// top answer is the object whose grade is closest to 1/2, with overall
/// grade `min(g, 1−g) <= 1/2`.
pub fn hard_query_database(n: usize, rng: &mut impl Rng) -> ScoringDatabase {
    assert!(n >= 1);
    // Distinct grades: stratified sampling — one draw per subinterval of
    // width 1/n, shuffled across objects.
    let mut grades: Vec<f64> = (0..n)
        .map(|i| (i as f64 + rng.gen::<f64>().clamp(0.001, 0.999)) / n as f64)
        .collect();
    use rand::seq::SliceRandom;
    grades.shuffle(rng);

    let q: Vec<Grade> = grades.iter().map(|&g| Grade::clamped(g)).collect();
    let not_q: Vec<Grade> = grades.iter().map(|&g| Grade::clamped(1.0 - g)).collect();
    ScoringDatabase::from_object_grades(&[q, not_q])
}

/// Spearman rank correlation between two lists of a database, estimated
/// from the object ranks.
pub fn spearman_rho(db: &ScoringDatabase, list_a: usize, list_b: usize) -> f64 {
    let n = db.n();
    assert!(n >= 2, "need at least two objects");
    let rank_of = |list: usize| -> Vec<usize> {
        let mut ranks = vec![0usize; n];
        for (rank, entry) in db.lists()[list].iter().enumerate() {
            ranks[entry.object.index()] = rank;
        }
        ranks
    };
    let ra = rank_of(list_a);
    let rb = rank_of(list_b);
    // Spearman's rho = 1 - 6 Σ d² / (n(n²-1)), exact for tie-free ranks.
    let d2: f64 = (0..n)
        .map(|x| {
            let d = ra[x] as f64 - rb[x] as f64;
            d * d
        })
        .sum();
    let nf = n as f64;
    1.0 - 6.0 * d2 / (nf * (nf * nf - 1.0))
}

/// True if object grades in the two lists satisfy `g₂ = 1 − g₁` exactly —
/// the defining property of the hard instance.
pub fn is_complement_pair(db: &ScoringDatabase) -> bool {
    if db.m() != 2 {
        return false;
    }
    let a = db.lists()[0].to_map();
    let b = db.lists()[1].to_map();
    (0..db.n() as u64).all(|x| {
        let id = ObjectId(x);
        a[&id].complement().approx_eq(b[&id], 1e-12)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn rho_zero_is_near_independent() {
        let db = latent_database(2, 2000, 0.0, &mut rng());
        let rho = spearman_rho(&db, 0, 1);
        assert!(rho.abs() < 0.1, "measured rho = {rho}");
    }

    #[test]
    fn rho_one_is_identical_order() {
        let db = latent_database(2, 500, 1.0, &mut rng());
        let rho = spearman_rho(&db, 0, 1);
        assert!(rho > 0.999, "measured rho = {rho}");
    }

    #[test]
    fn rho_minus_one_is_reversed_order() {
        let db = latent_database(2, 500, -1.0, &mut rng());
        let rho = spearman_rho(&db, 0, 1);
        assert!(rho < -0.999, "measured rho = {rho}");
    }

    #[test]
    fn rho_is_monotone_in_the_mixing_weight() {
        let mut measured = Vec::new();
        for rho in [-0.8, -0.4, 0.0, 0.4, 0.8] {
            let db = latent_database(2, 3000, rho, &mut rng());
            measured.push(spearman_rho(&db, 0, 1));
        }
        assert!(measured.windows(2).all(|w| w[0] < w[1]), "{measured:?}");
    }

    #[test]
    fn hard_query_is_complement_pair() {
        let db = hard_query_database(100, &mut rng());
        assert!(is_complement_pair(&db));
        let rho = spearman_rho(&db, 0, 1);
        assert!(rho < -0.999, "measured rho = {rho}");
    }

    #[test]
    fn hard_query_grades_are_distinct() {
        let db = hard_query_database(200, &mut rng());
        let mut grades: Vec<_> = db.lists()[0].iter().map(|e| e.grade).collect();
        grades.dedup();
        assert_eq!(grades.len(), 200);
    }

    #[test]
    #[should_panic]
    fn negative_rho_needs_two_lists() {
        latent_database(3, 10, -0.5, &mut rng());
    }
}
