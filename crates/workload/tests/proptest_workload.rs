//! Property tests for the Section 5 combinatorial framework: skeletons,
//! intersection depths, scoring-database consistency — and the cursor
//! engine's behaviour on skeleton-derived workloads.

use garlic_core::{Engine, GradedSource};
use garlic_workload::distributions::{
    BoundedGrades, CrispGrades, GradeDistribution, QuantizedGrades, StridedGrades, UniformGrades,
};
use garlic_workload::perm::Permutation;
use garlic_workload::scoring::ScoringDatabase;
use garlic_workload::skeleton::Skeleton;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intersection_size_is_monotone_in_depth(m in 1usize..5, n in 1usize..60, seed in 0u64..500) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let s = Skeleton::random(m, n, &mut rng);
        let mut prev = 0;
        for t in 0..=n {
            let cur = s.intersection_size(t);
            prop_assert!(cur >= prev, "t = {t}");
            prev = cur;
        }
        prop_assert_eq!(s.intersection_size(n), n, "full depth matches everything");
    }

    #[test]
    fn matching_depth_is_least_witness(m in 1usize..4, n in 1usize..50, seed in 0u64..500) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let s = Skeleton::random(m, n, &mut rng);
        for k in [1, n / 2 + 1, n] {
            if k == 0 || k > n { continue; }
            let t = s.matching_depth(k);
            prop_assert!(s.intersection_size(t) >= k);
            if t > 0 {
                prop_assert!(s.intersection_size(t - 1) < k);
            }
        }
    }

    #[test]
    fn matching_depth_monotone_in_k(m in 1usize..4, n in 2usize..50, seed in 0u64..500) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let s = Skeleton::random(m, n, &mut rng);
        let mut prev = 0;
        for k in 1..=n {
            let t = s.matching_depth(k);
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn every_distribution_is_descending_and_in_range(n in 1usize..200, seed in 0u64..500) {
        let dists: Vec<Box<dyn GradeDistribution>> = vec![
            Box::new(UniformGrades),
            Box::new(BoundedGrades::new(0.9)),
            Box::new(CrispGrades::new(0.3)),
            Box::new(StridedGrades),
            Box::new(QuantizedGrades::new(5)),
        ];
        let mut rng = garlic_workload::seeded_rng(seed);
        for d in dists {
            let gs = d.descending_grades(n, &mut rng);
            prop_assert_eq!(gs.len(), n, "{}", d.name());
            prop_assert!(gs.windows(2).all(|w| w[0] >= w[1]), "{}", d.name());
        }
    }

    #[test]
    fn scoring_db_from_skeleton_is_consistent(m in 1usize..4, n in 1usize..40, seed in 0u64..500) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let s = Skeleton::random(m, n, &mut rng);
        let db = ScoringDatabase::from_skeleton(&s, &UniformGrades, &mut rng);
        prop_assert!(db.consistent_with(&s));
        prop_assert_eq!(db.to_sources().len(), m);
    }

    #[test]
    fn reversed_permutation_is_involutive(n in 1usize..100, seed in 0u64..500) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let p = Permutation::random(n, &mut rng);
        prop_assert_eq!(p.reversed().reversed(), p.clone());
        // Rank arithmetic: rank_rev(x) = n - 1 - rank(x).
        let fwd = p.ranks();
        let bwd = p.reversed().ranks();
        for x in 0..n {
            prop_assert_eq!(bwd[x], n - 1 - fwd[x]);
        }
    }

    #[test]
    fn hard_query_database_properties(n in 1usize..150, seed in 0u64..500) {
        use garlic_workload::correlation::{hard_query_database, is_complement_pair};
        let mut rng = garlic_workload::seeded_rng(seed);
        let db = hard_query_database(n, &mut rng);
        prop_assert_eq!(db.m(), 2);
        prop_assert_eq!(db.n(), n);
        prop_assert!(is_complement_pair(&db));
        // All grades distinct in list 0.
        let mut grades: Vec<_> = db.lists()[0].iter().map(|e| e.grade).collect();
        grades.dedup();
        prop_assert_eq!(grades.len(), n);
    }

    #[test]
    fn latent_database_shape(m in 2usize..5, n in 2usize..40, seed in 0u64..200,
                             rho in 0.0f64..=1.0) {
        use garlic_workload::correlation::latent_database;
        let mut rng = garlic_workload::seeded_rng(seed);
        let db = latent_database(m, n, rho, &mut rng);
        prop_assert_eq!(db.m(), m);
        prop_assert_eq!(db.n(), n);
    }

    #[test]
    fn engine_stop_depth_equals_skeleton_matching_depth(
        m in 1usize..4, n in 1usize..50, seed in 0u64..300, k_frac in 0.0f64..=1.0
    ) {
        // The batched engine's sorted phase must stop at exactly the
        // skeleton's combinatorial matching depth — the quantity every
        // Section 5/6 bound is stated over — never a batch beyond it.
        let mut rng = garlic_workload::seeded_rng(seed);
        let skeleton = Skeleton::random(m, n, &mut rng);
        let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
        prop_assert!(db.consistent_with(&skeleton));
        let k = ((k_frac * n as f64) as usize).clamp(1, n);

        let mut engine = Engine::open(db.to_sources()).unwrap();
        engine.advance_until_matched(k).unwrap();
        prop_assert_eq!(engine.depth(), skeleton.matching_depth(k));
        prop_assert!(engine.matched().len() >= k);
    }

    #[test]
    fn batched_cursors_replay_skeleton_order(
        m in 1usize..4, n in 1usize..50, seed in 0u64..300, batch in 1usize..8
    ) {
        // Cursor streaming over scoring-database sources must walk each
        // list in its skeleton order, at any batch size.
        let mut rng = garlic_workload::seeded_rng(seed);
        let skeleton = Skeleton::random(m, n, &mut rng);
        let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
        for (i, source) in db.to_sources().iter().enumerate() {
            let mut cursor = source.open_sorted();
            let mut streamed = Vec::new();
            while cursor.next_batch(&mut streamed, batch) > 0 {}
            prop_assert_eq!(streamed.len(), n);
            for (rank, entry) in streamed.iter().enumerate() {
                prop_assert_eq!(entry.object, skeleton.list(i).object_at(rank), "list {i} rank {rank}");
                prop_assert_eq!(Some(*entry), source.sorted_access(rank));
            }
        }
    }
}
