//! A QBIC-like image-content subsystem (the paper's canonical
//! "nontraditional" data server, Section 1).
//!
//! The real QBIC [NBE+93] is a closed IBM system; what the paper relies on
//! is only its *interface*: given a colour or shape query it produces a
//! graded set of all images under sorted and random access, using
//! "sophisticated color-matching algorithms" that score how close two
//! images' colours are. We substitute a transparent synthetic model that
//! preserves exactly that behaviour:
//!
//! * every image carries a normalised **hue histogram** (12 bins) and a
//!   **shape descriptor** (roundness, elongation in `[0,1]`);
//! * a colour query compares histograms by *histogram intersection*
//!   `Σᵢ min(aᵢ, bᵢ) ∈ [0,1]` — the classic QBIC-era colour similarity
//!   (so "an image that contains a lot of red and a little green might be
//!   considered moderately close to another with a lot of pink", as the
//!   paper's footnote describes);
//! * a shape query scores `1 − mean |Δdescriptor|`.
//!
//! Section 8's "different semantics" is modelled too: QBIC's *internal*
//! conjunction combines scores by **product**, not Garlic's min, so pushing
//! a conjunction down produces (observably) different rankings.

use garlic_agg::Grade;
use garlic_core::access::{GradedSource, MemorySource};
use garlic_core::ObjectId;
use rand::Rng;
use std::sync::Arc;

use crate::api::{AtomicQuery, Subsystem, SubsystemError, Target};

/// Number of hue bins in a colour histogram.
pub const COLOR_BINS: usize = 12;

/// A named colour Garlic users can query for, mapped to a hue bin.
pub const NAMED_COLORS: [(&str, usize); 8] = [
    ("red", 0),
    ("orange", 1),
    ("yellow", 2),
    ("green", 4),
    ("cyan", 6),
    ("blue", 8),
    ("purple", 10),
    ("pink", 11),
];

/// A Tamura-style texture descriptor: coarseness, contrast, and
/// directionality, each in `[0,1]` (the QBIC paper [NBE+93] searched by
/// "color, texture and shape").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextureDescriptor {
    /// Coarseness (0 = fine grain, 1 = coarse).
    pub coarseness: f64,
    /// Contrast (0 = flat, 1 = high contrast).
    pub contrast: f64,
    /// Directionality (0 = isotropic, 1 = strongly directional).
    pub directionality: f64,
}

impl TextureDescriptor {
    /// A uniformly random descriptor.
    pub fn random(rng: &mut impl Rng) -> Self {
        TextureDescriptor {
            coarseness: rng.gen(),
            contrast: rng.gen(),
            directionality: rng.gen(),
        }
    }

    /// Similarity `1 − mean |Δ|` to another descriptor, in `[0,1]`.
    pub fn similarity(&self, other: &TextureDescriptor) -> Grade {
        let d = ((self.coarseness - other.coarseness).abs()
            + (self.contrast - other.contrast).abs()
            + (self.directionality - other.directionality).abs())
            / 3.0;
        Grade::clamped(1.0 - d)
    }
}

/// A synthetic image: a hue histogram, a shape descriptor, and a texture
/// descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Normalised hue histogram (sums to 1).
    pub histogram: [f64; COLOR_BINS],
    /// Roundness in `[0,1]` (1 = a perfect disc).
    pub roundness: f64,
    /// Elongation in `[0,1]` (0 = equal axes).
    pub elongation: f64,
    /// Tamura-style texture features.
    pub texture: TextureDescriptor,
}

impl Image {
    /// A random image: histogram from normalised exponential draws
    /// (occasionally concentrated on a dominant hue), shape and texture
    /// uniform.
    pub fn random(rng: &mut impl Rng) -> Self {
        let mut histogram = [0.0; COLOR_BINS];
        // Exponential draws give occasional strong dominance.
        for h in histogram.iter_mut() {
            *h = -rng.gen::<f64>().max(1e-12).ln();
        }
        // A third of images get an artificially dominant hue, so colour
        // queries have clear winners.
        if rng.gen::<f64>() < 0.33 {
            let dominant = rng.gen_range(0..COLOR_BINS);
            histogram[dominant] += 4.0;
        }
        let total: f64 = histogram.iter().sum();
        for h in histogram.iter_mut() {
            *h /= total;
        }
        Image {
            histogram,
            roundness: rng.gen(),
            elongation: rng.gen(),
            texture: TextureDescriptor::random(rng),
        }
    }

    /// An image dominated by the named colour, with `purity ∈ [0,1]` of its
    /// mass on that hue (the rest spread uniformly).
    pub fn with_dominant_color(name: &str, purity: f64, rng: &mut impl Rng) -> Option<Self> {
        let bin = named_color_bin(name)?;
        let mut histogram = [(1.0 - purity) / (COLOR_BINS - 1) as f64; COLOR_BINS];
        histogram[bin] = purity;
        Some(Image {
            histogram,
            roundness: rng.gen(),
            elongation: rng.gen(),
            texture: TextureDescriptor::random(rng),
        })
    }

    /// Histogram-intersection colour similarity, in `[0,1]`.
    pub fn color_similarity(&self, target: &[f64; COLOR_BINS]) -> Grade {
        let sum: f64 = self
            .histogram
            .iter()
            .zip(target)
            .map(|(a, b)| a.min(*b))
            .sum();
        Grade::clamped(sum)
    }

    /// Shape similarity to a (roundness, elongation) target, in `[0,1]`.
    pub fn shape_similarity(&self, roundness: f64, elongation: f64) -> Grade {
        let d = ((self.roundness - roundness).abs() + (self.elongation - elongation).abs()) / 2.0;
        Grade::clamped(1.0 - d)
    }
}

/// The hue bin of a named colour.
pub fn named_color_bin(name: &str) -> Option<usize> {
    NAMED_COLORS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, b)| *b)
}

/// The target histogram of a named colour: mass concentrated on its bin
/// with exponential falloff to circular neighbours.
pub fn named_color_histogram(name: &str) -> Option<[f64; COLOR_BINS]> {
    let bin = named_color_bin(name)?;
    let mut h = [0.0; COLOR_BINS];
    for (i, v) in h.iter_mut().enumerate() {
        let d = circular_distance(i, bin);
        *v = 0.5f64.powi(d as i32 * 2);
    }
    let total: f64 = h.iter().sum();
    for v in h.iter_mut() {
        *v /= total;
    }
    Some(h)
}

/// The (roundness, elongation) target of a named shape.
pub fn named_shape_target(name: &str) -> Option<(f64, f64)> {
    match name {
        "round" => Some((1.0, 0.0)),
        "square" => Some((0.6, 0.0)),
        "oval" => Some((0.8, 0.5)),
        "elongated" => Some((0.3, 1.0)),
        "irregular" => Some((0.1, 0.4)),
        _ => None,
    }
}

/// The texture target of a named texture.
pub fn named_texture_target(name: &str) -> Option<TextureDescriptor> {
    let (coarseness, contrast, directionality) = match name {
        "smooth" => (0.1, 0.1, 0.1),
        "rough" => (0.9, 0.8, 0.3),
        "striped" => (0.4, 0.7, 0.95),
        "speckled" => (0.2, 0.9, 0.1),
        "woven" => (0.5, 0.5, 0.7),
        _ => return None,
    };
    Some(TextureDescriptor {
        coarseness,
        contrast,
        directionality,
    })
}

fn circular_distance(a: usize, b: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(COLOR_BINS - d)
}

/// The QBIC-like store: a collection of images answering `Color = c` and
/// `Shape = s` queries.
#[derive(Debug, Clone)]
pub struct QbicStore {
    name: String,
    images: Vec<Image>,
}

impl QbicStore {
    /// Wraps a set of images.
    pub fn new(name: &str, images: Vec<Image>) -> Self {
        QbicStore {
            name: name.to_owned(),
            images,
        }
    }

    /// A synthetic collection of `n` random images.
    pub fn synthetic(name: &str, n: usize, rng: &mut impl Rng) -> Self {
        QbicStore::new(name, (0..n).map(|_| Image::random(rng)).collect())
    }

    /// The image behind an object id.
    pub fn image(&self, id: ObjectId) -> Option<&Image> {
        self.images.get(id.index())
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the store holds no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Grades every image under one atomic query.
    fn grade_all(&self, query: &AtomicQuery) -> Result<Vec<Grade>, SubsystemError> {
        let name = match &query.target {
            Target::Text(s) => s.as_str(),
            _ => {
                return Err(SubsystemError::TypeMismatch {
                    attribute: query.attribute.clone(),
                    detail: "QBIC queries take a named colour or shape".into(),
                })
            }
        };
        match query.attribute.as_str() {
            "Color" | "AlbumColor" => {
                let target =
                    named_color_histogram(name).ok_or_else(|| SubsystemError::TypeMismatch {
                        attribute: query.attribute.clone(),
                        detail: format!("unknown colour {name:?}"),
                    })?;
                Ok(self
                    .images
                    .iter()
                    .map(|img| img.color_similarity(&target))
                    .collect())
            }
            "Shape" => {
                let (r, e) =
                    named_shape_target(name).ok_or_else(|| SubsystemError::TypeMismatch {
                        attribute: query.attribute.clone(),
                        detail: format!("unknown shape {name:?}"),
                    })?;
                Ok(self
                    .images
                    .iter()
                    .map(|img| img.shape_similarity(r, e))
                    .collect())
            }
            "Texture" => {
                let target =
                    named_texture_target(name).ok_or_else(|| SubsystemError::TypeMismatch {
                        attribute: query.attribute.clone(),
                        detail: format!("unknown texture {name:?}"),
                    })?;
                Ok(self
                    .images
                    .iter()
                    .map(|img| img.texture.similarity(&target))
                    .collect())
            }
            other => Err(SubsystemError::UnknownAttribute {
                attribute: other.to_owned(),
                subsystem: self.name.clone(),
            }),
        }
    }
}

impl Subsystem for QbicStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<String> {
        vec![
            "Color".into(),
            "AlbumColor".into(),
            "Shape".into(),
            "Texture".into(),
        ]
    }

    fn universe_size(&self) -> usize {
        self.images.len()
    }

    fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        Ok(Arc::new(MemorySource::from_grades(&self.grade_all(query)?)))
    }

    fn supports_internal_conjunction(&self) -> bool {
        true
    }

    /// QBIC's internal conjunction: scores multiply (Section 8 — "QBIC has
    /// a different semantics for conjunction than Garlic", so delegating a
    /// conjunction to QBIC "might get different results" than combining the
    /// atomic answers by Garlic's min rule).
    fn evaluate_internal_conjunction(
        &self,
        queries: &[AtomicQuery],
    ) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        if queries.is_empty() {
            return Err(SubsystemError::Unsupported {
                reason: "empty internal conjunction".into(),
            });
        }
        let mut combined = vec![Grade::ONE; self.images.len()];
        for q in queries {
            for (acc, g) in combined.iter_mut().zip(self.grade_all(q)?) {
                *acc = Grade::clamped(acc.value() * g.value());
            }
        }
        Ok(Arc::new(MemorySource::from_grades(&combined)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(8)
    }

    #[test]
    fn histograms_normalised() {
        let img = Image::random(&mut rng());
        let sum: f64 = img.histogram.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let h = named_color_histogram("red").unwrap();
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pure_color_scores_best() {
        let red = Image::with_dominant_color("red", 0.95, &mut rng()).unwrap();
        let blue = Image::with_dominant_color("blue", 0.95, &mut rng()).unwrap();
        let target = named_color_histogram("red").unwrap();
        assert!(red.color_similarity(&target) > blue.color_similarity(&target));
    }

    #[test]
    fn nearby_hues_are_moderately_close() {
        // The paper's footnote: pink should be closer to red than green is.
        let pink = Image::with_dominant_color("pink", 0.9, &mut rng()).unwrap();
        let green = Image::with_dominant_color("green", 0.9, &mut rng()).unwrap();
        let red = named_color_histogram("red").unwrap();
        assert!(pink.color_similarity(&red) > green.color_similarity(&red));
    }

    #[test]
    fn shape_similarity_peaks_at_match() {
        let img = Image {
            histogram: [1.0 / COLOR_BINS as f64; COLOR_BINS],
            roundness: 1.0,
            elongation: 0.0,
            texture: TextureDescriptor::random(&mut rng()),
        };
        assert_eq!(img.shape_similarity(1.0, 0.0), Grade::ONE);
        assert!(img.shape_similarity(0.0, 1.0) < Grade::HALF);
    }

    #[test]
    fn texture_similarity_peaks_at_match() {
        let smooth = named_texture_target("smooth").unwrap();
        assert_eq!(smooth.similarity(&smooth), Grade::ONE);
        let rough = named_texture_target("rough").unwrap();
        assert!(smooth.similarity(&rough) < smooth.similarity(&smooth));
    }

    #[test]
    fn texture_queries_evaluate() {
        let store = QbicStore::synthetic("qbic", 30, &mut rng());
        let src = store
            .evaluate(&AtomicQuery::new("Texture", Target::text("striped")))
            .unwrap();
        assert_eq!(src.len(), 30);
        let a = src.sorted_access(0).unwrap().grade;
        let b = src.sorted_access(29).unwrap().grade;
        assert!(a >= b);
        assert!(store
            .evaluate(&AtomicQuery::new("Texture", Target::text("holographic")))
            .is_err());
    }

    #[test]
    fn subsystem_evaluates_color_and_shape() {
        let store = QbicStore::synthetic("qbic", 50, &mut rng());
        let color = store
            .evaluate(&AtomicQuery::new("Color", Target::text("red")))
            .unwrap();
        assert_eq!(color.len(), 50);
        let shape = store
            .evaluate(&AtomicQuery::new("Shape", Target::text("round")))
            .unwrap();
        assert_eq!(shape.len(), 50);
        // Sorted access descends.
        let a = color.sorted_access(0).unwrap().grade;
        let b = color.sorted_access(1).unwrap().grade;
        assert!(a >= b);
    }

    #[test]
    fn cursor_streams_similarity_ranking_in_batches() {
        let store = QbicStore::synthetic("qbic", 23, &mut rng());
        let src = store
            .evaluate(&AtomicQuery::new("Color", Target::text("blue")))
            .unwrap();
        let mut cursor = src.open_sorted();
        let mut streamed = Vec::new();
        while cursor.next_batch(&mut streamed, 5) > 0 {}
        assert_eq!(streamed.len(), 23);
        for (rank, e) in streamed.iter().enumerate() {
            assert_eq!(Some(*e), src.sorted_access(rank));
        }
    }

    #[test]
    fn unknown_names_error() {
        let store = QbicStore::synthetic("qbic", 5, &mut rng());
        assert!(store
            .evaluate(&AtomicQuery::new("Color", Target::text("chartreuse")))
            .is_err());
        assert!(store
            .evaluate(&AtomicQuery::new("Shape", Target::text("dodecahedron")))
            .is_err());
        assert!(store
            .evaluate(&AtomicQuery::new("Mood", Target::text("wistful")))
            .is_err());
    }

    #[test]
    fn internal_conjunction_is_product_not_min() {
        let store = QbicStore::synthetic("qbic", 40, &mut rng());
        let qs = [
            AtomicQuery::new("Color", Target::text("red")),
            AtomicQuery::new("Shape", Target::text("round")),
        ];
        let internal = store.evaluate_internal_conjunction(&qs).unwrap();
        // Check one object: internal grade == product of atomic grades.
        let c = store.evaluate(&qs[0]).unwrap();
        let s = store.evaluate(&qs[1]).unwrap();
        let id = ObjectId(7);
        let expect = c.random_access(id).unwrap().value() * s.random_access(id).unwrap().value();
        assert!(internal
            .random_access(id)
            .unwrap()
            .approx_eq(Grade::clamped(expect), 1e-12));
    }
}
