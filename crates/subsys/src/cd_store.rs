//! The paper's running example, assembled: "an application of a store that
//! sells compact disks" (Section 2), where `Artist = "Beatles"` goes to a
//! relational DBMS and `AlbumColor = "red"` goes to QBIC.
//!
//! This module builds a coherent little dataset — albums with artists,
//! years, synthetic cover images, and review text — shared across three
//! subsystems over one object universe, for the examples and the
//! middleware integration tests.

use rand::Rng;

use crate::qbic::{Image, QbicStore};
use crate::relational::{RelationalStore, Value};
use crate::text::TextStore;

/// One album of the demo dataset.
#[derive(Debug, Clone)]
pub struct Album {
    /// Artist name.
    pub artist: &'static str,
    /// Album title.
    pub title: &'static str,
    /// Release year.
    pub year: f64,
    /// Dominant cover colour (a [`crate::qbic::NAMED_COLORS`] name).
    pub cover_color: &'static str,
    /// How pure the dominant colour is, in `[0,1]`.
    pub purity: f64,
    /// A snippet of review text.
    pub review: &'static str,
}

/// The demo catalogue: a dozen albums with deliberately contrasting
/// attributes (several Beatles albums with different cover colours, several
/// red covers by other artists).
pub fn demo_albums() -> Vec<Album> {
    vec![
        Album {
            artist: "Beatles",
            title: "Crimson Meadows",
            year: 1966.0,
            cover_color: "red",
            purity: 0.9,
            review: "swirling psychedelic rock with crimson artwork",
        },
        Album {
            artist: "Beatles",
            title: "Blue Submarine",
            year: 1968.0,
            cover_color: "blue",
            purity: 0.85,
            review: "playful psychedelic pop under the sea",
        },
        Album {
            artist: "Beatles",
            title: "Orchard Lane",
            year: 1969.0,
            cover_color: "green",
            purity: 0.8,
            review: "gentle melodic rock with pastoral lyrics",
        },
        Album {
            artist: "Beatles",
            title: "Scarlet Parade",
            year: 1967.0,
            cover_color: "red",
            purity: 0.6,
            review: "brass driven pop rock parade",
        },
        Album {
            artist: "Kinks",
            title: "Red Lantern",
            year: 1966.0,
            cover_color: "red",
            purity: 0.95,
            review: "raw garage rock riffs and wit",
        },
        Album {
            artist: "Kinks",
            title: "Village Dusk",
            year: 1968.0,
            cover_color: "orange",
            purity: 0.7,
            review: "nostalgic chamber pop storytelling",
        },
        Album {
            artist: "Who",
            title: "Pinball Sky",
            year: 1969.0,
            cover_color: "blue",
            purity: 0.75,
            review: "anthemic rock opera energy",
        },
        Album {
            artist: "Who",
            title: "Carmine Steps",
            year: 1970.0,
            cover_color: "red",
            purity: 0.8,
            review: "thunderous drums and power chords",
        },
        Album {
            artist: "Zombies",
            title: "Odessey Grove",
            year: 1968.0,
            cover_color: "purple",
            purity: 0.85,
            review: "baroque psychedelic pop harmonies",
        },
        Album {
            artist: "Byrds",
            title: "Cinnamon Mile",
            year: 1967.0,
            cover_color: "orange",
            purity: 0.65,
            review: "jangling folk rock twelve string",
        },
        Album {
            artist: "Byrds",
            title: "Rose Highway",
            year: 1969.0,
            cover_color: "pink",
            purity: 0.7,
            review: "country rock with sweet harmonies",
        },
        Album {
            artist: "Animals",
            title: "Ruby District",
            year: 1965.0,
            cover_color: "red",
            purity: 0.5,
            review: "gritty blues rock organ swagger",
        },
    ]
}

/// The three demo subsystems over one universe: a relational store
/// (`Artist`, `Title`, `Year`), a QBIC store (`AlbumColor`, `Shape`), and a
/// text store (`Review`). Object `i` is album `i` in every subsystem.
pub fn demo_subsystems(rng: &mut impl Rng) -> (RelationalStore, QbicStore, TextStore) {
    let albums = demo_albums();

    let mut relational = RelationalStore::new("cd_relational", &["Artist", "Title", "Year"]);
    for a in &albums {
        relational.insert(vec![
            Value::text(a.artist),
            Value::text(a.title),
            Value::Number(a.year),
        ]);
    }

    let images: Vec<Image> = albums
        .iter()
        .map(|a| {
            Image::with_dominant_color(a.cover_color, a.purity, rng)
                .expect("demo colours are all named colours")
        })
        .collect();
    let qbic = QbicStore::new("cd_qbic", images);

    let reviews: Vec<&str> = albums.iter().map(|a| a.review).collect();
    let text = TextStore::new("cd_reviews", "Review", &reviews);

    (relational, qbic, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{AtomicQuery, Subsystem, Target};
    use garlic_core::ObjectId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn universes_align() {
        let mut rng = StdRng::seed_from_u64(1);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        let n = demo_albums().len();
        assert_eq!(rel.universe_size(), n);
        assert_eq!(qbic.universe_size(), n);
        assert_eq!(text.universe_size(), n);
    }

    #[test]
    fn beatles_select_matches_catalogue() {
        let mut rng = StdRng::seed_from_u64(1);
        let (rel, _, _) = demo_subsystems(&mut rng);
        let beatles = rel.select_eq("Artist", &Value::text("Beatles")).unwrap();
        assert_eq!(
            beatles,
            vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(3)]
        );
    }

    #[test]
    fn red_covers_outrank_blue_on_red_query() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, qbic, _) = demo_subsystems(&mut rng);
        let reds = qbic
            .evaluate(&AtomicQuery::new("AlbumColor", Target::text("red")))
            .unwrap();
        use garlic_core::GradedSource;
        // Kinks "Red Lantern" (obj 4, purity .95) should beat Beatles "Blue
        // Submarine" (obj 1).
        let lantern = reds.random_access(ObjectId(4)).unwrap();
        let submarine = reds.random_access(ObjectId(1)).unwrap();
        assert!(lantern > submarine);
    }

    #[test]
    fn all_three_demo_subsystems_stream_through_cursors() {
        use garlic_core::GradedSource;
        let mut rng = StdRng::seed_from_u64(1);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        let sources: Vec<std::sync::Arc<dyn GradedSource>> = vec![
            rel.evaluate(&AtomicQuery::new("Artist", Target::text("Beatles")))
                .unwrap(),
            qbic.evaluate(&AtomicQuery::new("AlbumColor", Target::text("red")))
                .unwrap(),
            text.evaluate(&AtomicQuery::new("Review", Target::terms(&["rock"])))
                .unwrap(),
        ];
        for src in &sources {
            let mut cursor = src.open_sorted();
            let mut streamed = Vec::new();
            while cursor.next_batch(&mut streamed, 5) > 0 {}
            assert_eq!(streamed.len(), demo_albums().len());
            for (rank, e) in streamed.iter().enumerate() {
                assert_eq!(Some(*e), src.sorted_access(rank));
            }
        }
    }

    #[test]
    fn reviews_answer_rock_queries() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, _, text) = demo_subsystems(&mut rng);
        let src = text
            .evaluate(&AtomicQuery::new(
                "Review",
                Target::terms(&["psychedelic", "rock"]),
            ))
            .unwrap();
        use garlic_core::GradedSource;
        let top = src.sorted_access(0).unwrap();
        assert!(top.grade > garlic_agg::Grade::ZERO);
    }
}
