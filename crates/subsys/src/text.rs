//! A text-retrieval subsystem — "many text retrieval systems \[return\] a
//! sorted list" (the paper's abstract). A third realistic subsystem for the
//! examples and middleware tests.
//!
//! Documents are tokenised bags of words; a query is a set of terms; scores
//! are tf-idf cosine similarities, which land in `[0,1]` because tf-idf
//! vectors are non-negative.

use garlic_agg::Grade;
use garlic_core::access::{GradedSource, MemorySource};
use garlic_core::ObjectId;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

use crate::api::{AtomicQuery, Subsystem, SubsystemError, Target};

/// An inverted-index text store over a fixed corpus.
#[derive(Debug, Clone)]
pub struct TextStore {
    name: String,
    attribute: String,
    /// Term frequencies per document.
    docs: Vec<HashMap<String, f64>>,
    /// Document frequency per term.
    df: HashMap<String, usize>,
    /// Per-document tf-idf vector norm.
    norms: Vec<f64>,
}

impl TextStore {
    /// Indexes a corpus. `attribute` is the queryable attribute name
    /// (e.g. `"Review"`).
    pub fn new(name: &str, attribute: &str, corpus: &[&str]) -> Self {
        let docs: Vec<HashMap<String, f64>> = corpus
            .iter()
            .map(|text| {
                let mut tf: HashMap<String, f64> = HashMap::new();
                for token in tokenize(text) {
                    *tf.entry(token).or_insert(0.0) += 1.0;
                }
                tf
            })
            .collect();
        let mut df: HashMap<String, usize> = HashMap::new();
        for doc in &docs {
            for term in doc.keys() {
                *df.entry(term.clone()).or_insert(0) += 1;
            }
        }
        let n_docs = docs.len().max(1) as f64;
        let idf = |term: &str, df: &HashMap<String, usize>| -> f64 {
            let d = df.get(term).copied().unwrap_or(0) as f64;
            ((1.0 + n_docs) / (1.0 + d)).ln() + 1.0
        };
        let norms = docs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|(t, tf)| (tf * idf(t, &df)).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        TextStore {
            name: name.to_owned(),
            attribute: attribute.to_owned(),
            docs,
            df,
            norms,
        }
    }

    /// A synthetic corpus: `n` documents of `doc_len` tokens drawn from a
    /// `vocab`-word vocabulary with a Zipf-ish skew.
    pub fn synthetic(
        name: &str,
        attribute: &str,
        n: usize,
        vocab: usize,
        doc_len: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let corpus: Vec<String> = (0..n)
            .map(|_| {
                (0..doc_len)
                    .map(|_| {
                        // Zipf-ish: squash a uniform draw.
                        let u: f64 = rng.gen::<f64>();
                        let idx = ((u * u) * vocab as f64) as usize % vocab;
                        format!("w{idx}")
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        TextStore::new(name, attribute, &refs)
    }

    fn idf(&self, term: &str) -> f64 {
        let n_docs = self.docs.len().max(1) as f64;
        let d = self.df.get(term).copied().unwrap_or(0) as f64;
        ((1.0 + n_docs) / (1.0 + d)).ln() + 1.0
    }

    /// tf-idf cosine score of one document against query terms.
    pub fn score(&self, doc: ObjectId, terms: &[String]) -> Grade {
        let Some(tf) = self.docs.get(doc.index()) else {
            return Grade::ZERO;
        };
        // Query vector: weight 1·idf per distinct lower-cased term.
        let distinct: std::collections::BTreeSet<String> =
            terms.iter().map(|t| t.to_lowercase()).collect();
        let q_norm = distinct
            .iter()
            .map(|t| self.idf(t).powi(2))
            .sum::<f64>()
            .sqrt();
        let d_norm = self.norms[doc.index()];
        if q_norm == 0.0 || d_norm == 0.0 {
            return Grade::ZERO;
        }
        let dot: f64 = distinct
            .iter()
            .map(|t| {
                let idf = self.idf(t);
                tf.get(t.as_str()).copied().unwrap_or(0.0) * idf * idf
            })
            .sum();
        Grade::clamped(dot / (q_norm * d_norm))
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

impl Subsystem for TextStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<String> {
        vec![self.attribute.clone()]
    }

    fn universe_size(&self) -> usize {
        self.docs.len()
    }

    fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        if query.attribute != self.attribute {
            return Err(SubsystemError::UnknownAttribute {
                attribute: query.attribute.clone(),
                subsystem: self.name.clone(),
            });
        }
        let terms: Vec<String> = match &query.target {
            Target::Terms(ts) => ts.clone(),
            Target::Text(s) => tokenize(s),
            Target::Number(_) => {
                return Err(SubsystemError::TypeMismatch {
                    attribute: query.attribute.clone(),
                    detail: "text retrieval takes terms, not numbers".into(),
                })
            }
        };
        let grades: Vec<Grade> = (0..self.docs.len())
            .map(|i| self.score(ObjectId(i as u64), &terms))
            .collect();
        Ok(Arc::new(MemorySource::from_grades(&grades)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store() -> TextStore {
        TextStore::new(
            "reviews",
            "Review",
            &[
                "a psychedelic rock masterpiece of psychedelic sound",
                "gentle acoustic folk ballads",
                "rock and roll with blues roots",
                "",
            ],
        )
    }

    #[test]
    fn exact_topic_scores_highest() {
        let s = store();
        let terms = vec!["psychedelic".to_owned(), "rock".to_owned()];
        let scores: Vec<Grade> = (0..4).map(|i| s.score(ObjectId(i), &terms)).collect();
        assert!(
            scores[0] > scores[2],
            "psychedelic doc beats plain rock doc"
        );
        assert!(scores[2] > scores[1], "rock doc beats folk doc");
        assert_eq!(scores[3], Grade::ZERO, "empty doc scores zero");
    }

    #[test]
    fn scores_are_valid_grades() {
        let s = store();
        let terms = vec!["rock".to_owned()];
        for i in 0..4 {
            let g = s.score(ObjectId(i), &terms);
            assert!(g >= Grade::ZERO && g <= Grade::ONE);
        }
    }

    #[test]
    fn unknown_terms_score_zero() {
        let s = store();
        assert_eq!(s.score(ObjectId(0), &["zanzibar".to_owned()]), Grade::ZERO);
    }

    #[test]
    fn subsystem_interface_sorted_access() {
        let s = store();
        let src = s
            .evaluate(&AtomicQuery::new(
                "Review",
                Target::terms(&["psychedelic", "rock"]),
            ))
            .unwrap();
        assert_eq!(src.len(), 4);
        assert_eq!(src.sorted_access(0).unwrap().object, ObjectId(0));
    }

    #[test]
    fn cursor_streams_ranked_documents_in_batches() {
        let s = store();
        let src = s
            .evaluate(&AtomicQuery::new("Review", Target::terms(&["rock"])))
            .unwrap();
        let mut cursor = src.open_sorted();
        let mut streamed = Vec::new();
        assert_eq!(cursor.next_batch(&mut streamed, 3), 3);
        assert_eq!(cursor.next_batch(&mut streamed, 3), 1);
        for (rank, e) in streamed.iter().enumerate() {
            assert_eq!(Some(*e), src.sorted_access(rank));
        }
    }

    #[test]
    fn text_target_is_tokenised() {
        let s = store();
        let src = s
            .evaluate(&AtomicQuery::new("Review", Target::text("Rock, Roll!")))
            .unwrap();
        assert!(src.sorted_access(0).unwrap().grade > Grade::ZERO);
    }

    #[test]
    fn wrong_attribute_errors() {
        let s = store();
        assert!(s
            .evaluate(&AtomicQuery::new("Lyrics", Target::text("rock")))
            .is_err());
    }

    #[test]
    fn synthetic_corpus_builds() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = TextStore::synthetic("syn", "Body", 30, 50, 20, &mut rng);
        assert_eq!(s.len(), 30);
        let src = s
            .evaluate(&AtomicQuery::new("Body", Target::terms(&["w3", "w7"])))
            .unwrap();
        assert_eq!(src.len(), 30);
    }
}
