//! A miniature relational store — the "traditional database system"
//! subsystem of the running example (Section 2).
//!
//! Queries like `Artist = "Beatles"` grade every object crisply: 1 if the
//! row matches, 0 otherwise. A hash index per column provides the
//! *set access* (enumerate all matches) that powers the filtered strategy
//! of Section 4, alongside the regular sorted/random access of every
//! subsystem.

use garlic_agg::Grade;
use garlic_core::access::{GradedSource, MemorySource, SetAccess};
use garlic_core::graded_set::GradedEntry;
use garlic_core::ObjectId;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::api::{AtomicQuery, Subsystem, SubsystemError, Target};

/// A value stored in a relational column.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text.
    Text(String),
    /// A number (equality compares exactly).
    Number(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Shorthand for a text value.
    pub fn text(s: &str) -> Value {
        Value::Text(s.to_owned())
    }

    fn key(&self) -> String {
        match self {
            Value::Text(s) => format!("t:{s}"),
            Value::Number(n) => format!("n:{n}"),
            Value::Bool(b) => format!("b:{b}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// An in-memory relation: named columns, one row per object, equality
/// indexes on every column.
#[derive(Debug, Clone)]
pub struct RelationalStore {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    /// column → value-key → matching rows.
    indexes: Vec<HashMap<String, Vec<ObjectId>>>,
}

impl RelationalStore {
    /// Creates an empty relation with the given columns.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        RelationalStore {
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            indexes: columns.iter().map(|_| HashMap::new()).collect(),
        }
    }

    /// Appends a row; the row's position is its [`ObjectId`].
    ///
    /// # Panics
    /// Panics if the row width differs from the column count.
    pub fn insert(&mut self, row: Vec<Value>) -> ObjectId {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match column count"
        );
        let id = ObjectId(self.rows.len() as u64);
        for (c, value) in row.iter().enumerate() {
            self.indexes[c].entry(value.key()).or_default().push(id);
        }
        self.rows.push(row);
        id
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column position of `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// A cell value.
    pub fn cell(&self, id: ObjectId, column: &str) -> Option<&Value> {
        let c = self.column_index(column)?;
        self.rows.get(id.index()).map(|r| &r[c])
    }

    /// Index lookup: all rows where `column = value`.
    pub fn select_eq(&self, column: &str, value: &Value) -> Result<Vec<ObjectId>, SubsystemError> {
        let c = self
            .column_index(column)
            .ok_or_else(|| SubsystemError::UnknownAttribute {
                attribute: column.to_owned(),
                subsystem: self.name.clone(),
            })?;
        Ok(self.indexes[c]
            .get(&value.key())
            .cloned()
            .unwrap_or_default())
    }

    /// Predicate scan: all rows satisfying an arbitrary [`Predicate`].
    /// Equality goes through the hash index; ranges scan the column.
    pub fn select(&self, predicate: &Predicate) -> Result<Vec<ObjectId>, SubsystemError> {
        match predicate {
            Predicate::Eq(column, value) => self.select_eq(column, value),
            Predicate::Ne(column, value) => {
                let c = self.require_column(column)?;
                Ok(self.scan(c, |v| v != value))
            }
            Predicate::Lt(column, bound) => self.numeric_scan(column, |x| x < *bound),
            Predicate::Le(column, bound) => self.numeric_scan(column, |x| x <= *bound),
            Predicate::Gt(column, bound) => self.numeric_scan(column, |x| x > *bound),
            Predicate::Ge(column, bound) => self.numeric_scan(column, |x| x >= *bound),
            Predicate::Between(column, lo, hi) => {
                self.numeric_scan(column, |x| *lo <= x && x <= *hi)
            }
        }
    }

    /// Evaluates any predicate as a crisp graded source with set access.
    pub fn predicate_source_for(
        &self,
        predicate: &Predicate,
    ) -> Result<CrispSource, SubsystemError> {
        Ok(CrispSource::new(self.rows.len(), self.select(predicate)?))
    }

    fn require_column(&self, column: &str) -> Result<usize, SubsystemError> {
        self.column_index(column)
            .ok_or_else(|| SubsystemError::UnknownAttribute {
                attribute: column.to_owned(),
                subsystem: self.name.clone(),
            })
    }

    fn scan(&self, column: usize, keep: impl Fn(&Value) -> bool) -> Vec<ObjectId> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| keep(&row[column]))
            .map(|(i, _)| ObjectId(i as u64))
            .collect()
    }

    fn numeric_scan(
        &self,
        column: &str,
        keep: impl Fn(f64) -> bool,
    ) -> Result<Vec<ObjectId>, SubsystemError> {
        let c = self.require_column(column)?;
        // Type check against the first row, if any.
        if let Some(first) = self.rows.first() {
            if !matches!(first[c], Value::Number(_)) {
                return Err(SubsystemError::TypeMismatch {
                    attribute: column.to_owned(),
                    detail: "range predicates require a numeric column".into(),
                });
            }
        }
        Ok(self.scan(c, |v| matches!(v, Value::Number(x) if keep(*x))))
    }

    /// Evaluates `column = value` as a crisp graded source with set access.
    pub fn predicate_source(
        &self,
        column: &str,
        value: &Value,
    ) -> Result<CrispSource, SubsystemError> {
        let matches = self.select_eq(column, value)?;
        Ok(CrispSource::new(self.rows.len(), matches))
    }
}

/// A relational selection predicate. `Eq`/`Ne` apply to any column type;
/// the range forms require numeric columns. (The paper's atomic queries are
/// `X = t`; the richer forms let the relational substrate express the
/// selective crisp filters the Section 4 strategy feeds on, e.g.
/// `Year BETWEEN 1966 AND 1969`.)
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column = value` (index-accelerated).
    Eq(String, Value),
    /// `column != value`.
    Ne(String, Value),
    /// `column < bound`.
    Lt(String, f64),
    /// `column <= bound`.
    Le(String, f64),
    /// `column > bound`.
    Gt(String, f64),
    /// `column >= bound`.
    Ge(String, f64),
    /// `lo <= column <= hi`.
    Between(String, f64, f64),
}

impl Predicate {
    /// `column = value` shorthand.
    pub fn eq(column: &str, value: Value) -> Predicate {
        Predicate::Eq(column.to_owned(), value)
    }
}

/// A crisp graded source: a match set over a universe, grades 1/0, with
/// [`SetAccess`]. Sorted order puts matches first (by id), non-matches after
/// (by id).
#[derive(Debug, Clone)]
pub struct CrispSource {
    inner: MemorySource,
    matches: Vec<ObjectId>,
}

impl CrispSource {
    /// Builds from a universe size and the set of matching objects.
    pub fn new(n: usize, mut matches: Vec<ObjectId>) -> Self {
        matches.sort();
        matches.dedup();
        let mut grades = vec![Grade::ZERO; n];
        for id in &matches {
            grades[id.index()] = Grade::ONE;
        }
        CrispSource {
            inner: MemorySource::from_grades(&grades),
            matches,
        }
    }

    /// The number of matching objects (`|S|` in the Section 4 strategy).
    pub fn selectivity_count(&self) -> usize {
        self.matches.len()
    }
}

impl GradedSource for CrispSource {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn sorted_access(&self, rank: usize) -> Option<GradedEntry> {
        self.inner.sorted_access(rank)
    }
    fn random_access(&self, object: ObjectId) -> Option<Grade> {
        self.inner.random_access(object)
    }
    /// Native cursor: streams the materialised matches-first ranking as a
    /// sequential slice walk (no per-rank index resolution).
    fn sorted_batch(&self, start: usize, count: usize, out: &mut Vec<GradedEntry>) -> usize {
        self.inner.sorted_batch(start, count, out)
    }
}

impl SetAccess for CrispSource {
    fn matching_set(&self) -> Vec<ObjectId> {
        self.matches.clone()
    }
}

impl Subsystem for RelationalStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<String> {
        self.columns.clone()
    }

    fn universe_size(&self) -> usize {
        self.rows.len()
    }

    fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        Ok(Arc::new(self.predicate_source(
            &query.attribute,
            &target_value(query)?,
        )?))
    }

    fn is_crisp(&self, attribute: &str) -> bool {
        self.column_index(attribute).is_some()
    }

    fn evaluate_set(&self, query: &AtomicQuery) -> Result<Arc<dyn SetAccess>, SubsystemError> {
        Ok(Arc::new(self.predicate_source(
            &query.attribute,
            &target_value(query)?,
        )?))
    }

    fn estimate_matches(&self, query: &AtomicQuery) -> Option<usize> {
        let value = target_value(query).ok()?;
        self.select_eq(&query.attribute, &value)
            .ok()
            .map(|v| v.len())
    }
}

fn target_value(query: &AtomicQuery) -> Result<Value, SubsystemError> {
    match &query.target {
        Target::Text(s) => Ok(Value::Text(s.clone())),
        Target::Number(n) => Ok(Value::Number(*n)),
        Target::Terms(_) => Err(SubsystemError::TypeMismatch {
            attribute: query.attribute.clone(),
            detail: "relational columns take text or numeric targets".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RelationalStore {
        let mut s = RelationalStore::new("cd_store", &["Artist", "Year"]);
        s.insert(vec![Value::text("Beatles"), Value::Number(1966.0)]);
        s.insert(vec![Value::text("Kinks"), Value::Number(1966.0)]);
        s.insert(vec![Value::text("Beatles"), Value::Number(1969.0)]);
        s
    }

    #[test]
    fn select_eq_uses_index() {
        let s = store();
        assert_eq!(
            s.select_eq("Artist", &Value::text("Beatles")).unwrap(),
            vec![ObjectId(0), ObjectId(2)]
        );
        assert_eq!(
            s.select_eq("Year", &Value::Number(1966.0)).unwrap(),
            vec![ObjectId(0), ObjectId(1)]
        );
        assert!(s
            .select_eq("Artist", &Value::text("Abba"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(matches!(
            store().select_eq("Genre", &Value::text("rock")),
            Err(SubsystemError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn crisp_source_grades_and_set_access() {
        let s = store();
        let src = s
            .predicate_source("Artist", &Value::text("Beatles"))
            .unwrap();
        assert_eq!(src.len(), 3);
        assert_eq!(src.random_access(ObjectId(0)), Some(Grade::ONE));
        assert_eq!(src.random_access(ObjectId(1)), Some(Grade::ZERO));
        assert_eq!(src.matching_set(), vec![ObjectId(0), ObjectId(2)]);
        assert_eq!(src.selectivity_count(), 2);
        // Sorted access: matches first.
        assert_eq!(src.sorted_access(0).unwrap().grade, Grade::ONE);
        assert_eq!(src.sorted_access(2).unwrap().grade, Grade::ZERO);
    }

    #[test]
    fn cursor_streams_matches_first_in_batches() {
        let s = store();
        let src = s
            .predicate_source("Artist", &Value::text("Beatles"))
            .unwrap();
        let mut cursor = src.open_sorted();
        let mut streamed = Vec::new();
        assert_eq!(cursor.next_batch(&mut streamed, 2), 2);
        assert_eq!(cursor.next_batch(&mut streamed, 2), 1);
        // The grade-1 block (the match set) streams before all non-matches.
        assert_eq!(streamed[0].grade, Grade::ONE);
        assert_eq!(streamed[1].grade, Grade::ONE);
        assert_eq!(streamed[2].grade, Grade::ZERO);
        for (rank, e) in streamed.iter().enumerate() {
            assert_eq!(Some(*e), src.sorted_access(rank));
        }
    }

    #[test]
    fn subsystem_interface() {
        let s = store();
        assert_eq!(s.attributes(), vec!["Artist", "Year"]);
        assert_eq!(s.universe_size(), 3);
        let src = s
            .evaluate(&AtomicQuery::new("Artist", Target::text("Kinks")))
            .unwrap();
        assert_eq!(src.random_access(ObjectId(1)), Some(Grade::ONE));
        assert!(!s.supports_internal_conjunction());
        assert!(s
            .evaluate(&AtomicQuery::new("Artist", Target::terms(&["x"])))
            .is_err());
    }

    #[test]
    fn cell_lookup() {
        let s = store();
        assert_eq!(s.cell(ObjectId(1), "Artist"), Some(&Value::text("Kinks")));
        assert_eq!(s.cell(ObjectId(9), "Artist"), None);
    }

    #[test]
    fn range_predicates() {
        let s = store();
        assert_eq!(
            s.select(&Predicate::Lt("Year".into(), 1967.0)).unwrap(),
            vec![ObjectId(0), ObjectId(1)]
        );
        assert_eq!(
            s.select(&Predicate::Ge("Year".into(), 1969.0)).unwrap(),
            vec![ObjectId(2)]
        );
        assert_eq!(
            s.select(&Predicate::Between("Year".into(), 1966.0, 1969.0))
                .unwrap()
                .len(),
            3
        );
        assert_eq!(
            s.select(&Predicate::Between("Year".into(), 1967.0, 1968.0))
                .unwrap(),
            vec![]
        );
    }

    #[test]
    fn ne_predicate_works_on_text() {
        let s = store();
        assert_eq!(
            s.select(&Predicate::Ne("Artist".into(), Value::text("Beatles")))
                .unwrap(),
            vec![ObjectId(1)]
        );
    }

    #[test]
    fn range_on_text_column_is_type_error() {
        let s = store();
        assert!(matches!(
            s.select(&Predicate::Lt("Artist".into(), 5.0)),
            Err(SubsystemError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.select(&Predicate::Lt("Genre".into(), 5.0)),
            Err(SubsystemError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn predicate_source_for_ranges_is_crisp() {
        let s = store();
        let src = s
            .predicate_source_for(&Predicate::Between("Year".into(), 1966.0, 1966.0))
            .unwrap();
        assert_eq!(src.selectivity_count(), 2);
        assert_eq!(src.matching_set(), vec![ObjectId(0), ObjectId(1)]);
        assert_eq!(src.random_access(ObjectId(2)), Some(Grade::ZERO));
    }

    #[test]
    fn eq_shorthand() {
        let s = store();
        let p = Predicate::eq("Artist", Value::text("Kinks"));
        assert_eq!(s.select(&p).unwrap(), vec![ObjectId(1)]);
    }
}
