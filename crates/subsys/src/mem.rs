//! A precomputed in-memory subsystem: one materialised graded list per
//! attribute.
//!
//! The paper's model only requires that a subsystem expose each subquery's
//! graded set through sorted and random access; *how* the grades came to be
//! is the subsystem's business. [`VectorSubsystem`] is the degenerate —
//! and, for workloads and benchmarks, the most useful — case: the grades
//! are computed ahead of time and evaluation is a handle clone.
//!
//! It is also the type that shows off the owned answer API: `evaluate`
//! returns `Arc::clone` of the materialised ranking, so a thousand
//! concurrent queries over the same attribute share one allocation instead
//! of regrading the universe per query.

use std::collections::BTreeMap;
use std::sync::Arc;

use garlic_agg::Grade;
use garlic_core::access::{GradedSource, MemorySource, SetAccess};
use garlic_core::ShardedSource;

use crate::api::{AtomicQuery, Subsystem, SubsystemError};

/// One registered ranking: owned answer handles (the same allocation
/// behind both trait facades — stable Rust cannot cross-cast trait-object
/// `Arc`s, so both are cloned from the concrete `Arc` at registration)
/// plus statistics precomputed at registration (crispness gates set
/// access; the exact-match count is planner selectivity). All are O(N) to
/// derive, so they are derived once here, not per query.
#[derive(Clone)]
struct AttributeList {
    graded: Arc<dyn GradedSource>,
    set: Arc<dyn SetAccess>,
    crisp: bool,
    ones: usize,
}

impl AttributeList {
    fn new(source: MemorySource) -> Self {
        let (crisp, ones) = list_stats(source.graded_set().iter().map(|e| e.grade));
        AttributeList::from_concrete(Arc::new(source), crisp, ones)
    }

    fn sharded(source: ShardedSource<MemorySource>, crisp: bool, ones: usize) -> Self {
        AttributeList::from_concrete(Arc::new(source), crisp, ones)
    }

    fn from_concrete<S: SetAccess + 'static>(source: Arc<S>, crisp: bool, ones: usize) -> Self {
        AttributeList {
            graded: Arc::clone(&source) as Arc<dyn GradedSource>,
            set: source as Arc<dyn SetAccess>,
            crisp,
            ones,
        }
    }
}

impl std::fmt::Debug for AttributeList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttributeList")
            .field("len", &self.graded.len())
            .field("crisp", &self.crisp)
            .field("ones", &self.ones)
            .finish()
    }
}

/// One registration-time pass over the grades: crispness fails at the
/// first fractional grade, and the grade-1 count is the exact-match count.
fn list_stats(grades: impl Iterator<Item = Grade>) -> (bool, usize) {
    let mut crisp = true;
    let mut ones = 0usize;
    for grade in grades {
        crisp &= grade.is_crisp();
        if grade == Grade::ONE {
            ones += 1;
        }
    }
    (crisp, ones)
}

/// A subsystem serving precomputed graded lists, keyed by attribute.
///
/// The atomic query's *target* is deliberately ignored: each attribute has
/// exactly one ranking, fixed at construction. That matches how the
/// workload generators of `garlic-workload` produce independent or
/// correlated lists for the Section 5 experiments.
#[derive(Debug, Clone)]
pub struct VectorSubsystem {
    name: String,
    universe: usize,
    lists: BTreeMap<String, AttributeList>,
}

impl VectorSubsystem {
    /// An empty subsystem over a universe of `universe` objects.
    pub fn new(name: &str, universe: usize) -> Self {
        VectorSubsystem {
            name: name.to_owned(),
            universe,
            lists: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) the ranking of `attribute`.
    ///
    /// # Panics
    /// Panics if `grades.len()` differs from the universe size.
    pub fn with_list(mut self, attribute: &str, grades: &[Grade]) -> Self {
        assert_eq!(
            grades.len(),
            self.universe,
            "list length must match the universe size"
        );
        self.lists.insert(
            attribute.to_owned(),
            AttributeList::new(MemorySource::from_grades(grades)),
        );
        self
    }

    /// Adds (or replaces) the ranking of `attribute` from a prebuilt source.
    ///
    /// # Panics
    /// Panics if the source's length differs from the universe size.
    pub fn with_source(mut self, attribute: &str, source: MemorySource) -> Self {
        assert_eq!(
            source.len(),
            self.universe,
            "source length must match the universe size"
        );
        self.lists
            .insert(attribute.to_owned(), AttributeList::new(source));
        self
    }

    /// Adds (or replaces) the ranking of `attribute` as a
    /// [`ShardedSource`] over `shards` contiguous object-id ranges —
    /// observably identical to [`with_list`](Self::with_list) over the
    /// same grades (entries, tie order, billed accesses), but served by a
    /// parallel scatter-gather merge with threshold early termination.
    ///
    /// # Panics
    /// Panics if `grades.len()` differs from the universe size, the
    /// universe is empty, or `shards` is zero.
    pub fn with_sharded_list(mut self, attribute: &str, grades: &[Grade], shards: usize) -> Self {
        assert_eq!(
            grades.len(),
            self.universe,
            "list length must match the universe size"
        );
        let (crisp, ones) = list_stats(grades.iter().copied());
        self.lists.insert(
            attribute.to_owned(),
            AttributeList::sharded(ShardedSource::from_grades(grades, shards), crisp, ones),
        );
        self
    }
}

impl Subsystem for VectorSubsystem {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<String> {
        self.lists.keys().cloned().collect()
    }

    fn universe_size(&self) -> usize {
        self.universe
    }

    /// Evaluation is an `Arc::clone` of the materialised ranking — no
    /// regrading, no copying, shared by every concurrent caller.
    fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        self.lists
            .get(&query.attribute)
            .map(|list| Arc::clone(&list.graded))
            .ok_or_else(|| SubsystemError::UnknownAttribute {
                attribute: query.attribute.clone(),
                subsystem: self.name.clone(),
            })
    }

    /// Crispness is precomputed at registration, so a list of 0/1 grades
    /// (a materialised classical predicate) is planner-visible as crisp —
    /// the same contract [`crate::disk::DiskSubsystem`] reads from its
    /// segment footers.
    fn is_crisp(&self, attribute: &str) -> bool {
        self.lists.get(attribute).is_some_and(|l| l.crisp)
    }

    fn evaluate_set(&self, query: &AtomicQuery) -> Result<Arc<dyn SetAccess>, SubsystemError> {
        let list =
            self.lists
                .get(&query.attribute)
                .ok_or_else(|| SubsystemError::UnknownAttribute {
                    attribute: query.attribute.clone(),
                    subsystem: self.name.clone(),
                })?;
        if !list.crisp {
            return Err(SubsystemError::Unsupported {
                reason: format!(
                    "{}.{} is not crisp, so it offers no set access",
                    self.name, query.attribute
                ),
            });
        }
        Ok(Arc::clone(&list.set))
    }

    /// The exact grade-1 count, precomputed at registration.
    fn estimate_matches(&self, query: &AtomicQuery) -> Option<usize> {
        self.lists.get(&query.attribute).map(|l| l.ones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Target;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn subsystem() -> VectorSubsystem {
        VectorSubsystem::new("mem", 3)
            .with_list("A", &[g(0.1), g(0.9), g(0.5)])
            .with_list("B", &[g(0.7), g(0.2), g(0.4)])
    }

    #[test]
    fn serves_its_attributes() {
        let s = subsystem();
        assert_eq!(s.attributes(), vec!["A".to_owned(), "B".to_owned()]);
        assert_eq!(s.universe_size(), 3);
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("anything")))
            .unwrap();
        assert_eq!(src.len(), 3);
        assert_eq!(src.sorted_access(0).unwrap().object.0, 1);
        assert!(s
            .evaluate(&AtomicQuery::new("C", Target::text("x")))
            .is_err());
    }

    #[test]
    fn answer_handles_serve_batched_random_access() {
        // The Arc<dyn GradedSource> handle must route random_batch to the
        // concrete source (positionally aligned, misses included), so the
        // engine's batched completion works through subsystem answers.
        let s = subsystem();
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("t")))
            .unwrap();
        use garlic_core::ObjectId;
        let probes = [ObjectId(1), ObjectId(9), ObjectId(0), ObjectId(1)];
        let mut batched = Vec::new();
        src.random_batch(&probes, &mut batched);
        let looped: Vec<_> = probes.iter().map(|&p| src.random_access(p)).collect();
        assert_eq!(batched, looped);
        assert_eq!(batched[1], None);
    }

    #[test]
    fn evaluation_shares_one_allocation() {
        let s = subsystem();
        let q = AtomicQuery::new("A", Target::text("t"));
        let a = s.evaluate(&q).unwrap();
        let b = s.evaluate(&q).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "answers are clones of one handle");
    }

    #[test]
    #[should_panic(expected = "universe size")]
    fn mismatched_list_length_panics() {
        let _ = VectorSubsystem::new("mem", 3).with_list("A", &[g(0.1)]);
    }

    #[test]
    fn sharded_lists_answer_identically_to_flat_lists() {
        let grades: Vec<Grade> = (0..97).map(|i| g((i % 7) as f64 / 6.0)).collect();
        let flat = VectorSubsystem::new("mem", 97).with_list("A", &grades);
        let q = AtomicQuery::new("A", Target::text("t"));
        let want = flat.evaluate(&q).unwrap();
        for shards in [1, 2, 3, 7] {
            let sharded = VectorSubsystem::new("mem", 97).with_sharded_list("A", &grades, shards);
            let got = sharded.evaluate(&q).unwrap();
            assert_eq!(got.len(), want.len());
            let mut a = Vec::new();
            let mut b = Vec::new();
            got.sorted_batch(0, 97, &mut a);
            want.sorted_batch(0, 97, &mut b);
            assert_eq!(a, b, "S={shards}: entries and tie order");
            use garlic_core::ObjectId;
            let probes: Vec<ObjectId> = (0..100u64).map(ObjectId).collect();
            let mut pa = Vec::new();
            let mut pb = Vec::new();
            got.random_batch(&probes, &mut pa);
            want.random_batch(&probes, &mut pb);
            assert_eq!(pa, pb, "S={shards}: fence-routed probes");
            assert_eq!(
                sharded.estimate_matches(&q),
                flat.estimate_matches(&q),
                "S={shards}"
            );
        }
    }

    #[test]
    fn sharded_crisp_lists_serve_set_access() {
        let grades: Vec<Grade> = (0..20).map(|i| Grade::from_bool(i % 3 == 0)).collect();
        let s = VectorSubsystem::new("mem", 20).with_sharded_list("K", &grades, 4);
        assert!(s.is_crisp("K"));
        let q = AtomicQuery::new("K", Target::text("t"));
        let mut set = s.evaluate_set(&q).unwrap().matching_set();
        set.sort();
        let expect: Vec<garlic_core::ObjectId> = (0..20)
            .filter(|i| i % 3 == 0)
            .map(|i| garlic_core::ObjectId(i as u64))
            .collect();
        assert_eq!(set, expect);
        assert_eq!(s.estimate_matches(&q), Some(expect.len()));
    }

    #[test]
    fn crisp_lists_serve_set_access() {
        let s = VectorSubsystem::new("mem", 3)
            .with_list("Fuzzy", &[g(0.1), g(0.9), g(0.5)])
            .with_list("Crisp", &[g(1.0), g(0.0), g(1.0)]);
        assert!(s.is_crisp("Crisp"));
        assert!(!s.is_crisp("Fuzzy"));
        assert!(!s.is_crisp("Missing"));
        let set = s
            .evaluate_set(&AtomicQuery::new("Crisp", Target::text("t")))
            .unwrap();
        use garlic_core::ObjectId;
        assert_eq!(set.matching_set(), vec![ObjectId(0), ObjectId(2)]);
        assert!(matches!(
            s.evaluate_set(&AtomicQuery::new("Fuzzy", Target::text("t"))),
            Err(SubsystemError::Unsupported { .. })
        ));
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("Crisp", Target::text("t"))),
            Some(2)
        );
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("Fuzzy", Target::text("t"))),
            Some(0)
        );
    }
}
