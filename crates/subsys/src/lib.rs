//! # garlic-subsys — simulated Garlic subsystems
//!
//! The paper's middleware sits on top of heterogeneous data servers it can
//! only reach through sorted and random access. This crate provides three
//! faithful stand-ins (see DESIGN.md for the substitution rationale):
//!
//! * [`relational`] — a tiny relational store whose predicates grade
//!   crisply (0/1), with set access for the Section 4 filtered strategy;
//! * [`qbic`] — a QBIC-like image server: synthetic hue histograms and
//!   shape descriptors, similarity scoring, and a *product*-semantics
//!   internal conjunction (the Section 8 mismatch);
//! * [`text`] — a tf-idf text-retrieval engine;
//! * [`mem`] — precomputed graded lists behind the subsystem interface,
//!   for workloads and benchmarks (evaluation is an `Arc` clone);
//! * [`disk`] — persistent graded lists: one verified on-disk segment per
//!   attribute, served through `garlic-storage`'s shared block cache, so
//!   corpus size is decoupled from RAM and collections survive restarts;
//! * [`cd_store`] — the paper's compact-disk running example wired across
//!   all three;
//! * [`api`] — the [`api::Subsystem`] trait they all implement. Subsystems
//!   are `Send + Sync` and answer with owned `Arc<dyn GradedSource>`
//!   handles, so one registered subsystem serves many concurrent queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cd_store;
pub mod disk;
pub mod mem;
pub mod qbic;
pub mod relational;
pub mod text;

pub use api::{AtomicQuery, Subsystem, SubsystemError, Target};
pub use disk::{AttributeHealth, DiskSubsystem};
pub use mem::VectorSubsystem;
pub use qbic::QbicStore;
pub use relational::{CrispSource, Predicate, RelationalStore, Value};
pub use text::TextStore;
