//! A disk-backed subsystem: one persistent segment file per attribute.
//!
//! [`DiskSubsystem`] is [`crate::mem::VectorSubsystem`]'s durable twin.
//! Where the vector subsystem holds each attribute's ranking in RAM, the
//! disk subsystem holds an opened [`SegmentSource`] per attribute — the
//! corpus lives in segment files, RAM holds only the footers and whatever
//! the shared [`BlockCache`] keeps resident, and a process restart loses
//! nothing. Evaluation is still an `Arc` clone of an owned handle, so a
//! thousand concurrent queries over one attribute share one open file and
//! one cache working set, exactly like the in-memory subsystems.
//!
//! Crisp attributes (every grade exactly 0 or 1 — recorded by the segment
//! writer and re-verified at open) additionally serve set access, making
//! persistent collections eligible for the Section 4 filtered strategy;
//! the footer's exact-match count doubles as free planner selectivity.
//!
//! Attributes come in two mutabilities. A segment-backed attribute
//! ([`DiskSubsystem::open_segment`]) is immutable — its statistics are
//! fixed footer facts. A **live** attribute
//! ([`DiskSubsystem::open_live`]) is backed by a writable
//! [`garlic_storage::LiveSource`] (WAL + memtables + compacted base
//! segment): queries evaluate to epoch-pinned snapshots, and
//! `estimate_matches`/`is_crisp` are computed from the current visible
//! state, so the planner sees every acknowledged write.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use garlic_core::access::{GradedSource, SetAccess};
use garlic_core::ShardedSource;
use garlic_storage::{
    std_vfs, BlockCache, CacheStats, FenceStats, LiveOptions, LiveSource, SegmentSource,
    StorageError, Vfs,
};
use garlic_telemetry::{MetricEntry, MetricValue, Telemetry};

use crate::api::{AtomicQuery, Subsystem, SubsystemError};

/// Default cache budget for a subsystem that was not handed a shared
/// cache: 1024 blocks (4 MiB at the default 4 KiB block size).
pub const DEFAULT_CACHE_BLOCKS: usize = 1024;

/// One registered persistent ranking.
///
/// A **fixed** attribute holds owned answer handles (both trait facades
/// cloned from one concrete `Arc` — a single [`SegmentSource`] or a
/// [`ShardedSource`] over an id-range partition of shard segments) plus
/// footer-derived statistics, fixed when the segment was written. A
/// **live** attribute holds a writable [`LiveSource`]; its statistics and
/// answer handles are computed at query time, so every acknowledged write
/// is reflected immediately.
#[derive(Clone)]
enum DiskAttribute {
    Fixed {
        graded: Arc<dyn GradedSource>,
        set: Arc<dyn SetAccess>,
        crisp: bool,
        ones: u64,
    },
    Live(Arc<LiveSource>),
}

impl DiskAttribute {
    fn from_concrete<S: SetAccess + 'static>(source: Arc<S>, crisp: bool, ones: u64) -> Self {
        DiskAttribute::Fixed {
            graded: Arc::clone(&source) as Arc<dyn GradedSource>,
            set: source as Arc<dyn SetAccess>,
            crisp,
            ones,
        }
    }

    fn crisp(&self) -> bool {
        match self {
            DiskAttribute::Fixed { crisp, .. } => *crisp,
            DiskAttribute::Live(live) => live.is_crisp(),
        }
    }

    fn ones(&self) -> u64 {
        match self {
            DiskAttribute::Fixed { ones, .. } => *ones,
            DiskAttribute::Live(live) => live.ones(),
        }
    }
}

impl std::fmt::Debug for DiskAttribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskAttribute::Fixed {
                graded,
                crisp,
                ones,
                ..
            } => f
                .debug_struct("DiskAttribute")
                .field("len", &graded.len())
                .field("crisp", crisp)
                .field("ones", ones)
                .finish(),
            DiskAttribute::Live(live) => f.debug_tuple("DiskAttribute").field(live).finish(),
        }
    }
}

/// A subsystem serving graded lists from immutable segment files, keyed by
/// attribute.
///
/// Like [`crate::mem::VectorSubsystem`], the atomic query's *target* is
/// ignored: each attribute has exactly one persistent ranking, fixed when
/// its segment was written.
#[derive(Debug)]
pub struct DiskSubsystem {
    name: String,
    universe: usize,
    cache: Arc<BlockCache>,
    segments: BTreeMap<String, DiskAttribute>,
    /// Concrete handles kept for the telemetry collector: per-attribute
    /// fence-skip and shard scatter-gather stats are read straight off
    /// these at snapshot time (pull-based — the query path pays nothing).
    probes: Vec<(String, FixedProbe)>,
    /// When set, sharded attributes registered afterwards opt in to
    /// degraded reads (a quarantined shard is dropped instead of failing
    /// the query; see [`ShardedSource::with_degraded_reads`]).
    degraded_reads: bool,
    /// Filesystem abstraction every subsequently opened attribute reads
    /// through — the real filesystem unless a test installed a
    /// [`garlic_storage::FaultVfs`].
    vfs: Arc<dyn Vfs>,
}

/// A concrete stats handle behind a fixed attribute — see
/// [`DiskSubsystem::register_telemetry`].
#[derive(Debug, Clone)]
enum FixedProbe {
    Segment(Arc<SegmentSource>),
    Sharded(Arc<ShardedSource<SegmentSource>>),
}

/// One fixed attribute's I/O health, as reported by
/// [`DiskSubsystem::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeHealth {
    /// The attribute this report covers.
    pub attribute: String,
    /// Segment files quarantined after exhausting their I/O retry budget.
    /// Empty means the attribute is fully healthy.
    pub quarantined: Vec<std::path::PathBuf>,
    /// Total transient read faults absorbed by retries across the
    /// attribute's segments.
    pub io_retries: u64,
    /// Block loads that exhausted the retry budget (each one quarantined
    /// a segment).
    pub io_gave_up: u64,
}

impl AttributeHealth {
    /// Whether every segment behind the attribute is serving reads.
    pub fn healthy(&self) -> bool {
        self.quarantined.is_empty()
    }
}

impl FixedProbe {
    /// The segments behind this attribute, for health and telemetry scans.
    fn segments(&self) -> Vec<&SegmentSource> {
        match self {
            FixedProbe::Segment(segment) => vec![segment],
            FixedProbe::Sharded(sharded) => sharded.shards().iter().collect(),
        }
    }

    /// Appends this attribute's metrics under `prefix`.
    fn collect(&self, prefix: &str, out: &mut Vec<MetricEntry>) {
        let counter = |name: String, value: u64| MetricEntry {
            name,
            value: MetricValue::Counter(value),
        };
        let fences: FenceStats = match self {
            FixedProbe::Segment(segment) => segment.fence_stats(),
            FixedProbe::Sharded(sharded) => {
                let stats = sharded.scan_stats();
                out.push(counter(format!("{prefix}.shard.emitted"), stats.emitted));
                out.push(counter(format!("{prefix}.shard.consumed"), stats.consumed));
                out.push(MetricEntry {
                    name: format!("{prefix}.shard.count"),
                    value: MetricValue::Gauge(stats.shards as i64),
                });
                // Realised early-termination savings, in basis points
                // (the registry is integer-valued).
                out.push(MetricEntry {
                    name: format!("{prefix}.shard.savings_bp"),
                    value: MetricValue::Gauge(
                        (stats.early_termination_savings() * 10_000.0) as i64,
                    ),
                });
                sharded
                    .shards()
                    .iter()
                    .map(SegmentSource::fence_stats)
                    .fold(FenceStats::default(), |acc, s| FenceStats {
                        blocks_loaded: acc.blocks_loaded + s.blocks_loaded,
                        blocks_skipped: acc.blocks_skipped + s.blocks_skipped,
                    })
            }
        };
        out.push(counter(
            format!("{prefix}.fence.blocks_loaded"),
            fences.blocks_loaded,
        ));
        out.push(counter(
            format!("{prefix}.fence.blocks_skipped"),
            fences.blocks_skipped,
        ));
        let (mut retries, mut gave_up, mut quarantined) = (0u64, 0u64, 0i64);
        for segment in self.segments() {
            retries += segment.io_retries();
            gave_up += segment.io_gave_up();
            quarantined += i64::from(segment.is_quarantined());
        }
        out.push(counter(format!("{prefix}.io_retries"), retries));
        out.push(counter(format!("{prefix}.io_gave_up"), gave_up));
        out.push(MetricEntry {
            name: format!("{prefix}.quarantined"),
            value: MetricValue::Gauge(quarantined),
        });
    }
}

impl DiskSubsystem {
    /// An empty subsystem over a universe of `universe` objects, with its
    /// own [`DEFAULT_CACHE_BLOCKS`]-block cache.
    pub fn new(name: &str, universe: usize) -> Self {
        DiskSubsystem::with_cache(
            name,
            universe,
            Arc::new(BlockCache::new(DEFAULT_CACHE_BLOCKS)),
        )
    }

    /// An empty subsystem reading through a caller-provided cache — the
    /// way several subsystems (or a subsystem and ad-hoc
    /// [`SegmentSource`]s) share one RAM budget.
    pub fn with_cache(name: &str, universe: usize, cache: Arc<BlockCache>) -> Self {
        DiskSubsystem {
            name: name.to_owned(),
            universe,
            cache,
            segments: BTreeMap::new(),
            probes: Vec::new(),
            degraded_reads: false,
            vfs: std_vfs(),
        }
    }

    /// Routes **subsequently opened** attributes' file I/O through `vfs` —
    /// the hook chaos tests use to open real segment files behind a
    /// [`garlic_storage::FaultVfs`] and drive the full middleware stack
    /// into its failure paths.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Opts **subsequently registered** sharded attributes in to degraded
    /// reads: when one shard of a sharded attribute is quarantined, reads
    /// drop that shard (treating its id range as ungraded) and flag the
    /// answer [`GradedSource::degraded`] instead of failing the whole
    /// query. Single-segment and live attributes are unaffected — with
    /// only one replica of the data there is nothing to degrade *to*.
    pub fn with_degraded_reads(mut self) -> Self {
        self.degraded_reads = true;
        self
    }

    /// Opens (and fully verifies) the segment at `path` as the ranking of
    /// `attribute`. A corrupted or truncated file is a typed
    /// [`StorageError`]; registering it never partially succeeds.
    ///
    /// # Panics
    /// Panics if the verified segment does not grade exactly this
    /// subsystem's universe `0..N` — a wiring error, like handing
    /// [`crate::mem::VectorSubsystem::with_list`] a short list. (Entry
    /// count `N` plus largest id `< N` plus the verified id uniqueness
    /// pin the dense universe exactly.)
    pub fn open_segment(mut self, attribute: &str, path: &Path) -> Result<Self, StorageError> {
        let segment = SegmentSource::open_with(path, Arc::clone(&self.cache), &self.vfs)?;
        assert_eq!(
            segment.len(),
            self.universe,
            "segment length must match the universe size"
        );
        if let Some(max) = segment.max_object() {
            assert!(
                max.index() < self.universe,
                "segment grades object {max} outside the universe size {}",
                self.universe
            );
        }
        let (crisp, ones) = (segment.is_crisp(), segment.exact_match_count());
        let segment = Arc::new(segment);
        self.probes.push((
            attribute.to_owned(),
            FixedProbe::Segment(Arc::clone(&segment)),
        ));
        self.segments.insert(
            attribute.to_owned(),
            DiskAttribute::from_concrete(segment, crisp, ones),
        );
        Ok(self)
    }

    /// Opens (and fully verifies) the segments at `paths` as one sharded
    /// ranking of `attribute` — an id-range partition, typically the files
    /// a [`SegmentWriter::write_sharded_pairs`] build published. Evaluation
    /// serves the [`ShardedSource`] scatter-gather merge: bit-identical to
    /// a single segment over the same pairs, with `estimate_matches` summed
    /// from the shard footers and crispness the conjunction of the shard
    /// flags.
    ///
    /// [`SegmentWriter::write_sharded_pairs`]: garlic_storage::SegmentWriter::write_sharded_pairs
    ///
    /// # Panics
    /// Panics on wiring errors: no shards, an empty shard, overlapping or
    /// out-of-order shard ranges, or a partition that does not grade
    /// exactly this subsystem's universe `0..N`.
    pub fn open_sharded_segment(
        mut self,
        attribute: &str,
        paths: impl IntoIterator<Item = impl AsRef<Path>>,
    ) -> Result<Self, StorageError> {
        let mut shards = Vec::new();
        for path in paths {
            shards.push(SegmentSource::open_with(
                path.as_ref(),
                Arc::clone(&self.cache),
                &self.vfs,
            )?);
        }
        assert!(!shards.is_empty(), "a sharded attribute needs shards");
        let fences: Vec<u64> = shards
            .iter()
            .map(|s| {
                s.min_object()
                    .expect("sharded attributes forbid empty shards")
                    .0
            })
            .collect();
        for pair in shards.windows(2) {
            let (prev_max, next_min) = (
                pair[0].max_object().expect("non-empty shard"),
                pair[1].min_object().expect("non-empty shard"),
            );
            assert!(
                prev_max < next_min,
                "shard ranges must be disjoint and ascending \
                 (shard ending at {prev_max} meets shard starting at {next_min})"
            );
        }
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(
            total, self.universe,
            "sharded segment length must match the universe size"
        );
        if let Some(max) = shards.last().and_then(|s| s.max_object()) {
            assert!(
                max.index() < self.universe,
                "segment grades object {max} outside the universe size {}",
                self.universe
            );
        }
        let crisp = shards.iter().all(|s| s.is_crisp());
        let ones = shards.iter().map(|s| s.exact_match_count()).sum();
        let mut sharded = ShardedSource::new(shards, fences);
        if self.degraded_reads {
            sharded = sharded.with_degraded_reads(self.universe as u64);
        }
        let sharded = Arc::new(sharded);
        self.probes.push((
            attribute.to_owned(),
            FixedProbe::Sharded(Arc::clone(&sharded)),
        ));
        self.segments.insert(
            attribute.to_owned(),
            DiskAttribute::from_concrete(sharded, crisp, ones),
        );
        Ok(self)
    }

    /// Opens (creating or crash-recovering) the **writable** live store in
    /// `dir` as the ranking of `attribute` — WAL, memtables, and base
    /// segment per [`LiveSource`]. The background compactor is enabled and
    /// the universe bound is enforced on every write; unlike a fixed
    /// segment the collection may be *sparse* (ungraded objects simply
    /// miss), since its membership changes over time.
    ///
    /// Queries against a live attribute evaluate to an epoch-pinned
    /// snapshot, and `estimate_matches`/`is_crisp` are computed from the
    /// current state, so the planner's Filtered-vs-stream decision tracks
    /// every acknowledged write instead of a stale footer.
    pub fn open_live(self, attribute: &str, dir: &Path) -> Result<Self, StorageError> {
        let opts = LiveOptions {
            auto_compact: true,
            ..LiveOptions::default()
        };
        self.open_live_with(attribute, dir, opts)
    }

    /// [`open_live`](DiskSubsystem::open_live) with explicit
    /// [`LiveOptions`] — deterministic tests disable `auto_compact` and
    /// shrink `memtable_limit`. The universe bound is always pinned to
    /// this subsystem's universe, overriding `opts.universe`.
    pub fn open_live_with(
        mut self,
        attribute: &str,
        dir: &Path,
        opts: LiveOptions,
    ) -> Result<Self, StorageError> {
        let opts = LiveOptions {
            universe: Some(self.universe),
            vfs: opts.vfs.or_else(|| Some(Arc::clone(&self.vfs))),
            ..opts
        };
        let live = LiveSource::open(dir, Arc::clone(&self.cache), opts)?;
        self.segments
            .insert(attribute.to_owned(), DiskAttribute::Live(Arc::new(live)));
        Ok(self)
    }

    /// The writable [`LiveSource`] behind `attribute`, if it was opened
    /// with [`open_live`](DiskSubsystem::open_live) — the handle writers
    /// upsert and delete through.
    pub fn live_source(&self, attribute: &str) -> Option<&Arc<LiveSource>> {
        match self.segments.get(attribute)? {
            DiskAttribute::Live(live) => Some(live),
            DiskAttribute::Fixed { .. } => None,
        }
    }

    /// The shared cache every segment of this subsystem reads through.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Hit/miss/eviction counters of the shared cache — the operator's
    /// cache-tuning signal.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Registers this subsystem's storage stats with `telemetry`, all
    /// pull-based: the shared cache's counters (under
    /// `storage.<name>.cache.*`, via [`BlockCache::register_telemetry`])
    /// plus, per fixed attribute, the segment grade-fence block outcomes
    /// (`storage.<name>.<attr>.fence.blocks_loaded` / `.blocks_skipped`)
    /// and — for sharded attributes — the scatter-gather merge stats
    /// (`.shard.emitted`, `.shard.consumed`, `.shard.count`,
    /// `.shard.savings_bp`). Query hot paths are untouched; everything is
    /// read at snapshot time from counters the sources already keep.
    pub fn register_telemetry(&self, telemetry: &Telemetry) {
        self.cache
            .register_telemetry(telemetry, &format!("storage.{}.cache", self.name));
        let probes = self.probes.clone();
        let name = self.name.clone();
        telemetry.register_collector(move |out| {
            for (attribute, probe) in &probes {
                probe.collect(&format!("storage.{name}.{attribute}"), out);
            }
        });
    }

    /// The I/O health of every fixed attribute: retry totals and any
    /// quarantined segment files. A quarantined segment keeps failing fast
    /// with a typed error until its file is repaired and the subsystem is
    /// reopened; under [`with_degraded_reads`](Self::with_degraded_reads)
    /// a sharded attribute keeps answering (flagged degraded) around it.
    pub fn health(&self) -> Vec<AttributeHealth> {
        self.probes
            .iter()
            .map(|(attribute, probe)| {
                let mut report = AttributeHealth {
                    attribute: attribute.clone(),
                    quarantined: Vec::new(),
                    io_retries: 0,
                    io_gave_up: 0,
                };
                for segment in probe.segments() {
                    report.io_retries += segment.io_retries();
                    report.io_gave_up += segment.io_gave_up();
                    if segment.is_quarantined() {
                        report.quarantined.push(segment.path().to_path_buf());
                    }
                }
                report
            })
            .collect()
    }

    fn segment(&self, query: &AtomicQuery) -> Result<&DiskAttribute, SubsystemError> {
        self.segments
            .get(&query.attribute)
            .ok_or_else(|| SubsystemError::UnknownAttribute {
                attribute: query.attribute.clone(),
                subsystem: self.name.clone(),
            })
    }
}

impl Subsystem for DiskSubsystem {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<String> {
        self.segments.keys().cloned().collect()
    }

    fn universe_size(&self) -> usize {
        self.universe
    }

    /// Evaluation is an `Arc::clone` of the opened segment — no I/O, no
    /// re-verification; blocks fault in through the shared cache as the
    /// answer is consumed. The handle serves both batched access paths
    /// natively: `sorted_batch` decodes each data block once, and
    /// `random_batch` groups probes by table block so a grade-completion
    /// sweep touches each block once per batch. A **live** attribute
    /// evaluates to an epoch-pinned snapshot of its current contents —
    /// still one `Arc` clone between writes (snapshots are cached per
    /// write version), and entirely unaffected by writes or compactions
    /// that land while the query runs.
    fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        self.segment(query).map(|s| match s {
            DiskAttribute::Fixed { graded, .. } => Arc::clone(graded),
            DiskAttribute::Live(live) => live.snapshot() as Arc<dyn GradedSource>,
        })
    }

    fn is_crisp(&self, attribute: &str) -> bool {
        self.segments.get(attribute).is_some_and(|s| s.crisp())
    }

    fn evaluate_set(&self, query: &AtomicQuery) -> Result<Arc<dyn SetAccess>, SubsystemError> {
        let segment = self.segment(query)?;
        if !segment.crisp() {
            return Err(SubsystemError::Unsupported {
                reason: format!(
                    "{}.{} is not crisp, so it offers no set access",
                    self.name, query.attribute
                ),
            });
        }
        Ok(match segment {
            DiskAttribute::Fixed { set, .. } => Arc::clone(set),
            DiskAttribute::Live(live) => live.snapshot() as Arc<dyn SetAccess>,
        })
    }

    /// The footer's exact-match count (summed over the shard footers for a
    /// sharded attribute): free, exact selectivity. A live attribute
    /// counts its currently visible grade-1 objects — memtable deltas
    /// included — so a write can flip the planner's decision immediately.
    fn estimate_matches(&self, query: &AtomicQuery) -> Option<usize> {
        self.segments
            .get(&query.attribute)
            .map(|s| s.ones() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Target;
    use garlic_agg::Grade;
    use garlic_storage::SegmentWriter;
    use std::path::PathBuf;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn temp_seg(name: &str, grades: &[Grade]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("garlic-subsys-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        SegmentWriter::new().write_grades(&path, grades).unwrap();
        path
    }

    fn subsystem() -> DiskSubsystem {
        let a = temp_seg("a.seg", &[g(0.1), g(0.9), g(0.5)]);
        let b = temp_seg("b.seg", &[g(1.0), g(0.0), g(1.0)]);
        DiskSubsystem::new("disk", 3)
            .open_segment("A", &a)
            .unwrap()
            .open_segment("B", &b)
            .unwrap()
    }

    #[test]
    fn serves_its_attributes() {
        let s = subsystem();
        assert_eq!(s.attributes(), vec!["A".to_owned(), "B".to_owned()]);
        assert_eq!(s.universe_size(), 3);
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("anything")))
            .unwrap();
        assert_eq!(src.len(), 3);
        assert_eq!(src.sorted_access(0).unwrap().object.0, 1);
        assert!(s
            .evaluate(&AtomicQuery::new("C", Target::text("x")))
            .is_err());
    }

    #[test]
    fn answer_handles_serve_batched_random_access() {
        let s = subsystem();
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("t")))
            .unwrap();
        use garlic_core::ObjectId;
        let probes = [ObjectId(2), ObjectId(9), ObjectId(0), ObjectId(2)];
        let mut batched = Vec::new();
        src.random_batch(&probes, &mut batched);
        let looped: Vec<_> = probes.iter().map(|&p| src.random_access(p)).collect();
        assert_eq!(batched, looped);
        assert_eq!(batched[1], None, "out-of-universe probe misses");
    }

    #[test]
    fn evaluation_shares_one_open_segment() {
        let s = subsystem();
        let q = AtomicQuery::new("A", Target::text("t"));
        let a = s.evaluate(&q).unwrap();
        let b = s.evaluate(&q).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "answers are clones of one handle");
    }

    #[test]
    fn crispness_comes_from_the_footer() {
        let s = subsystem();
        assert!(!s.is_crisp("A"));
        assert!(s.is_crisp("B"));
        assert!(!s.is_crisp("C"));
        let set = s
            .evaluate_set(&AtomicQuery::new("B", Target::text("t")))
            .unwrap();
        assert_eq!(
            set.matching_set(),
            vec![garlic_core::ObjectId(0), garlic_core::ObjectId(2)]
        );
        assert!(matches!(
            s.evaluate_set(&AtomicQuery::new("A", Target::text("t"))),
            Err(SubsystemError::Unsupported { .. })
        ));
    }

    #[test]
    fn estimates_come_from_the_footer() {
        let s = subsystem();
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("B", Target::text("t"))),
            Some(2)
        );
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("A", Target::text("t"))),
            Some(0)
        );
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("C", Target::text("t"))),
            None
        );
    }

    #[test]
    fn corrupt_segment_never_registers() {
        let path = temp_seg("corrupt.seg", &[g(0.1), g(0.9), g(0.5)]);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        let err = DiskSubsystem::new("disk", 3)
            .open_segment("A", &path)
            .unwrap_err();
        assert!(matches!(
            err,
            StorageError::ChecksumMismatch { .. } | StorageError::FooterCorrupt { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "universe size")]
    fn mismatched_universe_panics() {
        let path = temp_seg("short.seg", &[g(0.1)]);
        let _ = DiskSubsystem::new("disk", 3).open_segment("A", &path);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn out_of_universe_objects_panic() {
        // Right entry count, but sparse ids beyond the declared universe:
        // fused queries against dense sibling attributes would silently
        // miss on random access, so registration must refuse.
        let dir = std::env::temp_dir().join(format!("garlic-subsys-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sparse.seg");
        SegmentWriter::new()
            .write_pairs(
                &path,
                vec![
                    (garlic_core::ObjectId(10), g(0.5)),
                    (garlic_core::ObjectId(20), g(0.4)),
                    (garlic_core::ObjectId(999), g(0.3)),
                ],
            )
            .unwrap();
        let _ = DiskSubsystem::new("disk", 3).open_segment("A", &path);
    }

    #[test]
    fn shared_cache_is_observable() {
        let cache = Arc::new(BlockCache::new(16));
        let a = temp_seg("cache-a.seg", &[g(0.1), g(0.9), g(0.5)]);
        let s = DiskSubsystem::with_cache("disk", 3, Arc::clone(&cache))
            .open_segment("A", &a)
            .unwrap();
        assert_eq!(s.cache_stats().resident, 0, "open verifies without warming");
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("t")))
            .unwrap();
        let mut out = Vec::new();
        src.sorted_batch(0, 3, &mut out);
        assert!(s.cache_stats().misses > 0);
        assert!(Arc::ptr_eq(s.cache(), &cache));
    }

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("garlic-subsys-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sharded_segments_answer_identically_to_one_segment() {
        let grades: Vec<Grade> = (0..64).map(|i| g((i % 21) as f64 / 20.0)).collect();
        let dir = temp_dir();
        let flat = dir.join("shardeq.seg");
        SegmentWriter::new().write_grades(&flat, &grades).unwrap();
        for shards in [1usize, 2, 3, 7] {
            let parts = SegmentWriter::new()
                .write_sharded_grades(&dir, &format!("shardeq-{shards}"), shards, &grades)
                .unwrap();
            let s = DiskSubsystem::new("disk", grades.len())
                .open_segment("FLAT", &flat)
                .unwrap()
                .open_sharded_segment("SHARDED", parts.iter().map(|p| &p.path))
                .unwrap();
            let a = s
                .evaluate(&AtomicQuery::new("FLAT", Target::text("t")))
                .unwrap();
            let b = s
                .evaluate(&AtomicQuery::new("SHARDED", Target::text("t")))
                .unwrap();
            let (mut flat_run, mut sharded_run) = (Vec::new(), Vec::new());
            a.sorted_batch(0, grades.len(), &mut flat_run);
            b.sorted_batch(0, grades.len(), &mut sharded_run);
            assert_eq!(flat_run, sharded_run, "bit-identical stream at S={shards}");
            use garlic_core::ObjectId;
            let probes: Vec<ObjectId> = (0..80).map(ObjectId).collect();
            let (mut fp, mut sp) = (Vec::new(), Vec::new());
            a.random_batch(&probes, &mut fp);
            b.random_batch(&probes, &mut sp);
            assert_eq!(fp, sp, "identical probe answers at S={shards}");
            assert_eq!(
                s.estimate_matches(&AtomicQuery::new("FLAT", Target::text("t"))),
                s.estimate_matches(&AtomicQuery::new("SHARDED", Target::text("t"))),
                "footer estimates sum across shards"
            );
        }
    }

    #[test]
    fn sharded_crisp_segments_serve_set_access() {
        let grades: Vec<Grade> = (0..20).map(|i| Grade::from_bool(i % 3 == 0)).collect();
        let dir = temp_dir();
        let parts = SegmentWriter::new()
            .write_sharded_grades(&dir, "shardcrisp", 4, &grades)
            .unwrap();
        let s = DiskSubsystem::new("disk", grades.len())
            .open_sharded_segment("C", parts.iter().map(|p| &p.path))
            .unwrap();
        assert!(s.is_crisp("C"));
        let set = s
            .evaluate_set(&AtomicQuery::new("C", Target::text("t")))
            .unwrap();
        let mut matches = set.matching_set();
        matches.sort_unstable();
        let expected: Vec<_> = (0..20)
            .filter(|i| i % 3 == 0)
            .map(garlic_core::ObjectId)
            .collect();
        assert_eq!(matches, expected);
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("C", Target::text("t"))),
            Some(expected.len())
        );
    }

    #[test]
    fn mixed_format_versions_serve_identical_answers() {
        // One attribute persisted in segment format v1, its twin in v2
        // (the default), and a sharded attribute mixing one shard of each:
        // the subsystem's open paths dispatch per file, so every handle
        // answers identically.
        use garlic_core::ObjectId;
        use garlic_storage::format::{FORMAT_V1, FORMAT_VERSION};
        let grades: Vec<Grade> = (0..48).map(|i| g((i % 13) as f64 / 12.0)).collect();
        let dir = temp_dir();
        let v1 = dir.join("mixed-v1.seg");
        let v2 = dir.join("mixed-v2.seg");
        SegmentWriter::new()
            .with_version(FORMAT_V1)
            .unwrap()
            .write_grades(&v1, &grades)
            .unwrap();
        SegmentWriter::new()
            .with_version(FORMAT_VERSION)
            .unwrap()
            .write_grades(&v2, &grades)
            .unwrap();
        let (lo, hi): (Vec<_>, Vec<_>) = grades
            .iter()
            .enumerate()
            .map(|(i, &gr)| (ObjectId(i as u64), gr))
            .partition(|(id, _)| id.0 < 24);
        let shard_v1 = dir.join("mixed-shard-v1.seg");
        let shard_v2 = dir.join("mixed-shard-v2.seg");
        SegmentWriter::new()
            .with_version(FORMAT_V1)
            .unwrap()
            .write_pairs(&shard_v1, lo)
            .unwrap();
        SegmentWriter::new().write_pairs(&shard_v2, hi).unwrap();
        let s = DiskSubsystem::new("disk", grades.len())
            .open_segment("V1", &v1)
            .unwrap()
            .open_segment("V2", &v2)
            .unwrap()
            .open_sharded_segment("MIXED", [&shard_v1, &shard_v2])
            .unwrap();
        let answers: Vec<_> = ["V1", "V2", "MIXED"]
            .iter()
            .map(|a| s.evaluate(&AtomicQuery::new(a, Target::text("t"))).unwrap())
            .collect();
        let streams: Vec<Vec<_>> = answers
            .iter()
            .map(|src| {
                let mut out = Vec::new();
                src.sorted_batch(0, grades.len(), &mut out);
                out
            })
            .collect();
        assert_eq!(
            streams[0], streams[1],
            "v1 and v2 streams are bit-identical"
        );
        assert_eq!(streams[0], streams[2], "mixed shard stream matches");
        let probes: Vec<ObjectId> = (0..50).map(ObjectId).collect();
        let grades_for = |src: &Arc<dyn GradedSource>| {
            let mut out = Vec::new();
            src.random_batch(&probes, &mut out);
            out
        };
        assert_eq!(grades_for(&answers[0]), grades_for(&answers[1]));
        assert_eq!(grades_for(&answers[0]), grades_for(&answers[2]));
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("V1", Target::text("t"))),
            s.estimate_matches(&AtomicQuery::new("MIXED", Target::text("t"))),
            "footer estimates agree across formats"
        );
    }

    #[test]
    fn live_attributes_serve_writes_and_fresh_estimates() {
        use garlic_core::ObjectId;
        let dir = temp_dir().join("live-attr");
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskSubsystem::new("disk", 8)
            .open_live_with("L", &dir, garlic_storage::LiveOptions::default())
            .unwrap();
        let q = AtomicQuery::new("L", Target::text("t"));
        assert_eq!(s.estimate_matches(&q), Some(0));
        assert!(
            s.is_crisp("L"),
            "an empty live attribute is vacuously crisp"
        );

        let live = s.live_source("L").unwrap();
        live.upsert(ObjectId(1), Grade::ONE).unwrap();
        live.upsert(ObjectId(4), Grade::ONE).unwrap();
        live.upsert(ObjectId(6), Grade::ZERO).unwrap();
        // The estimate reflects the memtable immediately — no flush, no
        // reopen, no stale footer.
        assert_eq!(s.estimate_matches(&q), Some(2));
        assert!(s.is_crisp("L"));
        let set = s.evaluate_set(&q).unwrap();
        assert_eq!(set.matching_set(), vec![ObjectId(1), ObjectId(4)]);

        // A snapshot taken before a write keeps answering the old state.
        let before = s.evaluate(&q).unwrap();
        live.upsert(ObjectId(4), g(0.5)).unwrap();
        assert_eq!(s.estimate_matches(&q), Some(1));
        assert!(!s.is_crisp("L"), "a fuzzy write makes the attribute fuzzy");
        assert!(s.evaluate_set(&q).is_err());
        assert_eq!(before.random_access(ObjectId(4)), Some(Grade::ONE));
        let after = s.evaluate(&q).unwrap();
        assert_eq!(after.random_access(ObjectId(4)), Some(g(0.5)));
        assert_eq!(after.sorted_access(0).unwrap().object, ObjectId(1));
    }

    #[test]
    #[should_panic(expected = "outside the universe size")]
    fn live_writes_respect_the_universe() {
        use garlic_core::ObjectId;
        let dir = temp_dir().join("live-universe");
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskSubsystem::new("disk", 4)
            .open_live_with("L", &dir, garlic_storage::LiveOptions::default())
            .unwrap();
        let _ = s.live_source("L").unwrap().upsert(ObjectId(4), g(0.5));
    }

    #[test]
    #[should_panic(expected = "disjoint and ascending")]
    fn overlapping_shards_panic() {
        let dir = temp_dir();
        let lo = dir.join("overlap-lo.seg");
        let hi = dir.join("overlap-hi.seg");
        use garlic_core::ObjectId;
        SegmentWriter::new()
            .write_pairs(&lo, vec![(ObjectId(0), g(0.5)), (ObjectId(2), g(0.4))])
            .unwrap();
        SegmentWriter::new()
            .write_pairs(&hi, vec![(ObjectId(1), g(0.3)), (ObjectId(3), g(0.2))])
            .unwrap();
        let _ = DiskSubsystem::new("disk", 4).open_sharded_segment("A", [&lo, &hi]);
    }

    #[test]
    fn degraded_sharded_reads_survive_a_quarantined_shard() {
        use garlic_storage::{std_vfs, FaultKind, FaultOp, FaultRule, FaultVfs, Vfs};
        let grades: Vec<Grade> = (0..64).map(|i| g((i % 21) as f64 / 20.0)).collect();
        let dir = temp_dir();
        let parts = SegmentWriter::new()
            .write_sharded_grades(&dir, "degraded", 4, &grades)
            .unwrap();
        // Reopen the shards through a FaultVfs so shard 1 can be killed
        // after its (fault-free) open.
        let fault = Arc::new(FaultVfs::wrapping(std_vfs()));
        let cache = Arc::new(BlockCache::new(64));
        let mut shards = Vec::new();
        for part in &parts {
            let vfs = Arc::clone(&fault) as Arc<dyn Vfs>;
            shards.push(SegmentSource::open_with(&part.path, Arc::clone(&cache), &vfs).unwrap());
        }
        let victim = parts[1].path.file_name().unwrap().to_str().unwrap();
        let fences: Vec<u64> = shards.iter().map(|s| s.min_object().unwrap().0).collect();
        let sharded = Arc::new(
            garlic_core::ShardedSource::new(shards, fences)
                .with_degraded_reads(grades.len() as u64),
        );
        let mut s = DiskSubsystem::with_cache("disk", grades.len(), cache);
        s.probes
            .push(("D".to_owned(), FixedProbe::Sharded(Arc::clone(&sharded))));
        s.segments.insert(
            "D".to_owned(),
            DiskAttribute::from_concrete(sharded, false, 0),
        );
        assert!(s.health().iter().all(AttributeHealth::healthy));
        fault.push_rule(FaultRule {
            path_contains: victim.to_owned(),
            op: FaultOp::Read,
            nth: 0,
            kind: FaultKind::Permanent,
        });
        let src = s
            .evaluate(&AtomicQuery::new("D", Target::text("t")))
            .unwrap();
        let mut out = Vec::new();
        let got = src.try_sorted_batch(0, grades.len(), &mut out).unwrap();
        assert_eq!(got, grades.len(), "degraded scan still spans the universe");
        assert!(src.degraded(), "the answer must be flagged");
        // The dropped shard's ids answer grade zero, the others exactly.
        let dropped = s.health();
        let report = dropped.iter().find(|h| h.attribute == "D").unwrap();
        assert!(!report.healthy());
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.io_gave_up >= 1);
        assert!(
            report.quarantined[0].to_str().unwrap().contains(victim),
            "health names the dead file"
        );
    }

    #[test]
    #[should_panic(expected = "universe size")]
    fn sharded_universe_mismatch_panics() {
        let dir = temp_dir();
        let parts = SegmentWriter::new()
            .write_sharded_grades(&dir, "shardshort", 2, &[g(0.1), g(0.2), g(0.3)])
            .unwrap();
        let _ =
            DiskSubsystem::new("disk", 5).open_sharded_segment("A", parts.iter().map(|p| &p.path));
    }
}
