//! A disk-backed subsystem: one persistent segment file per attribute.
//!
//! [`DiskSubsystem`] is [`crate::mem::VectorSubsystem`]'s durable twin.
//! Where the vector subsystem holds each attribute's ranking in RAM, the
//! disk subsystem holds an opened [`SegmentSource`] per attribute — the
//! corpus lives in segment files, RAM holds only the footers and whatever
//! the shared [`BlockCache`] keeps resident, and a process restart loses
//! nothing. Evaluation is still an `Arc` clone of an owned handle, so a
//! thousand concurrent queries over one attribute share one open file and
//! one cache working set, exactly like the in-memory subsystems.
//!
//! Crisp attributes (every grade exactly 0 or 1 — recorded by the segment
//! writer and re-verified at open) additionally serve set access, making
//! persistent collections eligible for the Section 4 filtered strategy;
//! the footer's exact-match count doubles as free planner selectivity.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use garlic_core::access::{GradedSource, SetAccess};
use garlic_storage::{BlockCache, CacheStats, SegmentSource, StorageError};

use crate::api::{AtomicQuery, Subsystem, SubsystemError};

/// Default cache budget for a subsystem that was not handed a shared
/// cache: 1024 blocks (4 MiB at the default 4 KiB block size).
pub const DEFAULT_CACHE_BLOCKS: usize = 1024;

/// A subsystem serving graded lists from immutable segment files, keyed by
/// attribute.
///
/// Like [`crate::mem::VectorSubsystem`], the atomic query's *target* is
/// ignored: each attribute has exactly one persistent ranking, fixed when
/// its segment was written.
#[derive(Debug)]
pub struct DiskSubsystem {
    name: String,
    universe: usize,
    cache: Arc<BlockCache>,
    segments: BTreeMap<String, Arc<SegmentSource>>,
}

impl DiskSubsystem {
    /// An empty subsystem over a universe of `universe` objects, with its
    /// own [`DEFAULT_CACHE_BLOCKS`]-block cache.
    pub fn new(name: &str, universe: usize) -> Self {
        DiskSubsystem::with_cache(
            name,
            universe,
            Arc::new(BlockCache::new(DEFAULT_CACHE_BLOCKS)),
        )
    }

    /// An empty subsystem reading through a caller-provided cache — the
    /// way several subsystems (or a subsystem and ad-hoc
    /// [`SegmentSource`]s) share one RAM budget.
    pub fn with_cache(name: &str, universe: usize, cache: Arc<BlockCache>) -> Self {
        DiskSubsystem {
            name: name.to_owned(),
            universe,
            cache,
            segments: BTreeMap::new(),
        }
    }

    /// Opens (and fully verifies) the segment at `path` as the ranking of
    /// `attribute`. A corrupted or truncated file is a typed
    /// [`StorageError`]; registering it never partially succeeds.
    ///
    /// # Panics
    /// Panics if the verified segment does not grade exactly this
    /// subsystem's universe `0..N` — a wiring error, like handing
    /// [`crate::mem::VectorSubsystem::with_list`] a short list. (Entry
    /// count `N` plus largest id `< N` plus the verified id uniqueness
    /// pin the dense universe exactly.)
    pub fn open_segment(mut self, attribute: &str, path: &Path) -> Result<Self, StorageError> {
        let segment = SegmentSource::open(path, Arc::clone(&self.cache))?;
        assert_eq!(
            segment.len(),
            self.universe,
            "segment length must match the universe size"
        );
        if let Some(max) = segment.max_object() {
            assert!(
                max.index() < self.universe,
                "segment grades object {max} outside the universe size {}",
                self.universe
            );
        }
        self.segments
            .insert(attribute.to_owned(), Arc::new(segment));
        Ok(self)
    }

    /// The shared cache every segment of this subsystem reads through.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Hit/miss/eviction counters of the shared cache — the operator's
    /// cache-tuning signal.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn segment(&self, query: &AtomicQuery) -> Result<&Arc<SegmentSource>, SubsystemError> {
        self.segments
            .get(&query.attribute)
            .ok_or_else(|| SubsystemError::UnknownAttribute {
                attribute: query.attribute.clone(),
                subsystem: self.name.clone(),
            })
    }
}

impl Subsystem for DiskSubsystem {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<String> {
        self.segments.keys().cloned().collect()
    }

    fn universe_size(&self) -> usize {
        self.universe
    }

    /// Evaluation is an `Arc::clone` of the opened segment — no I/O, no
    /// re-verification; blocks fault in through the shared cache as the
    /// answer is consumed. The handle serves both batched access paths
    /// natively: `sorted_batch` decodes each data block once, and
    /// `random_batch` groups probes by table block so a grade-completion
    /// sweep touches each block once per batch.
    fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        self.segment(query)
            .map(|s| Arc::clone(s) as Arc<dyn GradedSource>)
    }

    fn is_crisp(&self, attribute: &str) -> bool {
        self.segments.get(attribute).is_some_and(|s| s.is_crisp())
    }

    fn evaluate_set(&self, query: &AtomicQuery) -> Result<Arc<dyn SetAccess>, SubsystemError> {
        let segment = self.segment(query)?;
        if !segment.is_crisp() {
            return Err(SubsystemError::Unsupported {
                reason: format!(
                    "{}.{} is not crisp, so it offers no set access",
                    self.name, query.attribute
                ),
            });
        }
        Ok(Arc::clone(segment) as Arc<dyn SetAccess>)
    }

    /// The footer's exact-match count: free, exact selectivity.
    fn estimate_matches(&self, query: &AtomicQuery) -> Option<usize> {
        self.segments
            .get(&query.attribute)
            .map(|s| s.exact_match_count() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Target;
    use garlic_agg::Grade;
    use garlic_storage::SegmentWriter;
    use std::path::PathBuf;

    fn g(v: f64) -> Grade {
        Grade::new(v).unwrap()
    }

    fn temp_seg(name: &str, grades: &[Grade]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("garlic-subsys-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        SegmentWriter::new().write_grades(&path, grades).unwrap();
        path
    }

    fn subsystem() -> DiskSubsystem {
        let a = temp_seg("a.seg", &[g(0.1), g(0.9), g(0.5)]);
        let b = temp_seg("b.seg", &[g(1.0), g(0.0), g(1.0)]);
        DiskSubsystem::new("disk", 3)
            .open_segment("A", &a)
            .unwrap()
            .open_segment("B", &b)
            .unwrap()
    }

    #[test]
    fn serves_its_attributes() {
        let s = subsystem();
        assert_eq!(s.attributes(), vec!["A".to_owned(), "B".to_owned()]);
        assert_eq!(s.universe_size(), 3);
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("anything")))
            .unwrap();
        assert_eq!(src.len(), 3);
        assert_eq!(src.sorted_access(0).unwrap().object.0, 1);
        assert!(s
            .evaluate(&AtomicQuery::new("C", Target::text("x")))
            .is_err());
    }

    #[test]
    fn answer_handles_serve_batched_random_access() {
        let s = subsystem();
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("t")))
            .unwrap();
        use garlic_core::ObjectId;
        let probes = [ObjectId(2), ObjectId(9), ObjectId(0), ObjectId(2)];
        let mut batched = Vec::new();
        src.random_batch(&probes, &mut batched);
        let looped: Vec<_> = probes.iter().map(|&p| src.random_access(p)).collect();
        assert_eq!(batched, looped);
        assert_eq!(batched[1], None, "out-of-universe probe misses");
    }

    #[test]
    fn evaluation_shares_one_open_segment() {
        let s = subsystem();
        let q = AtomicQuery::new("A", Target::text("t"));
        let a = s.evaluate(&q).unwrap();
        let b = s.evaluate(&q).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "answers are clones of one handle");
    }

    #[test]
    fn crispness_comes_from_the_footer() {
        let s = subsystem();
        assert!(!s.is_crisp("A"));
        assert!(s.is_crisp("B"));
        assert!(!s.is_crisp("C"));
        let set = s
            .evaluate_set(&AtomicQuery::new("B", Target::text("t")))
            .unwrap();
        assert_eq!(
            set.matching_set(),
            vec![garlic_core::ObjectId(0), garlic_core::ObjectId(2)]
        );
        assert!(matches!(
            s.evaluate_set(&AtomicQuery::new("A", Target::text("t"))),
            Err(SubsystemError::Unsupported { .. })
        ));
    }

    #[test]
    fn estimates_come_from_the_footer() {
        let s = subsystem();
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("B", Target::text("t"))),
            Some(2)
        );
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("A", Target::text("t"))),
            Some(0)
        );
        assert_eq!(
            s.estimate_matches(&AtomicQuery::new("C", Target::text("t"))),
            None
        );
    }

    #[test]
    fn corrupt_segment_never_registers() {
        let path = temp_seg("corrupt.seg", &[g(0.1), g(0.9), g(0.5)]);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        let err = DiskSubsystem::new("disk", 3)
            .open_segment("A", &path)
            .unwrap_err();
        assert!(matches!(
            err,
            StorageError::ChecksumMismatch { .. } | StorageError::FooterCorrupt { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "universe size")]
    fn mismatched_universe_panics() {
        let path = temp_seg("short.seg", &[g(0.1)]);
        let _ = DiskSubsystem::new("disk", 3).open_segment("A", &path);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn out_of_universe_objects_panic() {
        // Right entry count, but sparse ids beyond the declared universe:
        // fused queries against dense sibling attributes would silently
        // miss on random access, so registration must refuse.
        let dir = std::env::temp_dir().join(format!("garlic-subsys-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sparse.seg");
        SegmentWriter::new()
            .write_pairs(
                &path,
                vec![
                    (garlic_core::ObjectId(10), g(0.5)),
                    (garlic_core::ObjectId(20), g(0.4)),
                    (garlic_core::ObjectId(999), g(0.3)),
                ],
            )
            .unwrap();
        let _ = DiskSubsystem::new("disk", 3).open_segment("A", &path);
    }

    #[test]
    fn shared_cache_is_observable() {
        let cache = Arc::new(BlockCache::new(16));
        let a = temp_seg("cache-a.seg", &[g(0.1), g(0.9), g(0.5)]);
        let s = DiskSubsystem::with_cache("disk", 3, Arc::clone(&cache))
            .open_segment("A", &a)
            .unwrap();
        assert_eq!(s.cache_stats().resident, 0, "open verifies without warming");
        let src = s
            .evaluate(&AtomicQuery::new("A", Target::text("t")))
            .unwrap();
        let mut out = Vec::new();
        src.sorted_batch(0, 3, &mut out);
        assert!(s.cache_stats().misses > 0);
        assert!(Arc::ptr_eq(s.cache(), &cache));
    }
}
