//! The subsystem contract Garlic programs against.
//!
//! Garlic "is designed to be capable of integrating data that resides in
//! different database systems as well as a variety of nondatabase data
//! servers" (Section 1). A [`Subsystem`] answers *atomic queries* of the
//! form `X = t` (attribute = target, Section 2) with a graded set reachable
//! through sorted and random access; the middleware composes those answers.
//!
//! Section 8's wrinkle — a subsystem may natively evaluate conjunctions
//! under *its own* semantics ("internal conjunction") — is modelled by
//! [`Subsystem::evaluate_internal_conjunction`], which implementations may
//! override.

use garlic_core::access::{GradedSource, SetAccess};
use std::fmt;
use std::sync::Arc;

/// The target `t` of an atomic query `X = t`.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A text value: relational equality, or a named colour/shape for QBIC.
    Text(String),
    /// A numeric value: relational equality.
    Number(f64),
    /// Free-text search terms, for retrieval subsystems.
    Terms(Vec<String>),
}

impl Target {
    /// Shorthand for a text target.
    pub fn text(s: &str) -> Target {
        Target::Text(s.to_owned())
    }

    /// Shorthand for a terms target.
    pub fn terms(ts: &[&str]) -> Target {
        Target::Terms(ts.iter().map(|t| (*t).to_owned()).collect())
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Text(s) => write!(f, "{s:?}"),
            Target::Number(n) => write!(f, "{n}"),
            Target::Terms(ts) => write!(f, "{}", ts.join(" ")),
        }
    }
}

/// An atomic query `attribute = target` (Section 2's `X = t` form).
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicQuery {
    /// The attribute name, e.g. `"Artist"`, `"AlbumColor"`.
    pub attribute: String,
    /// The target value.
    pub target: Target,
}

impl AtomicQuery {
    /// Creates an atomic query.
    pub fn new(attribute: &str, target: Target) -> Self {
        AtomicQuery {
            attribute: attribute.to_owned(),
            target,
        }
    }
}

impl fmt::Display for AtomicQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.attribute, self.target)
    }
}

/// Errors a subsystem can raise while answering a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SubsystemError {
    /// The attribute is not served by this subsystem.
    UnknownAttribute {
        /// The attribute requested.
        attribute: String,
        /// The subsystem asked.
        subsystem: String,
    },
    /// The target type does not fit the attribute.
    TypeMismatch {
        /// The attribute requested.
        attribute: String,
        /// What went wrong.
        detail: String,
    },
    /// The operation (e.g. internal conjunction) is not supported.
    Unsupported {
        /// Why.
        reason: String,
    },
}

impl fmt::Display for SubsystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubsystemError::UnknownAttribute {
                attribute,
                subsystem,
            } => write!(
                f,
                "subsystem {subsystem} does not serve attribute {attribute}"
            ),
            SubsystemError::TypeMismatch { attribute, detail } => {
                write!(f, "type mismatch on {attribute}: {detail}")
            }
            SubsystemError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

impl std::error::Error for SubsystemError {}

/// A data server Garlic can delegate atomic queries to.
///
/// Subsystems are `Send + Sync`: the middleware is a *multi-user* fusion
/// layer (Section 1), so one registered subsystem serves many concurrent
/// queries through `&self`. Answers are returned as **owned**
/// `Arc<dyn GradedSource>` handles — `'static`, cheaply cloneable, and
/// movable across the threads of a service executor — rather than boxes
/// borrowing the subsystem.
pub trait Subsystem: Send + Sync {
    /// The subsystem's display name (e.g. `"QBIC"`).
    fn name(&self) -> &str;

    /// The attributes this subsystem serves.
    fn attributes(&self) -> Vec<String>;

    /// Number of objects in the shared universe.
    fn universe_size(&self) -> usize;

    /// Evaluates an atomic query, returning its graded set behind the
    /// sorted/random access interface as an owned, shareable handle.
    fn evaluate(&self, query: &AtomicQuery) -> Result<Arc<dyn GradedSource>, SubsystemError>;

    /// Whether this attribute grades crisply (all grades 0 or 1, like a
    /// traditional relational predicate). Lets the planner consider the
    /// Section 4 filtered strategy.
    fn is_crisp(&self, attribute: &str) -> bool {
        let _ = attribute;
        false
    }

    /// For crisp attributes: evaluate with *set access* (enumerate the
    /// match set), which the filtered strategy requires. The default
    /// refuses.
    fn evaluate_set(&self, query: &AtomicQuery) -> Result<Arc<dyn SetAccess>, SubsystemError> {
        let _ = query;
        Err(SubsystemError::Unsupported {
            reason: format!("{} offers no set access", self.name()),
        })
    }

    /// An estimate of how many objects match the query exactly (grade 1),
    /// for planner selectivity decisions. `None` if unknown.
    fn estimate_matches(&self, query: &AtomicQuery) -> Option<usize> {
        let _ = query;
        None
    }

    /// Whether the subsystem can evaluate conjunctions natively — possibly
    /// under *different* semantics than Garlic's (Section 8).
    fn supports_internal_conjunction(&self) -> bool {
        false
    }

    /// Evaluates a conjunction under the subsystem's own semantics
    /// (Section 8's "internal conjunction"). The default refuses.
    fn evaluate_internal_conjunction(
        &self,
        queries: &[AtomicQuery],
    ) -> Result<Arc<dyn GradedSource>, SubsystemError> {
        let _ = queries;
        Err(SubsystemError::Unsupported {
            reason: format!("{} has no internal conjunction", self.name()),
        })
    }
}

// Deliberately NO blanket `impl Subsystem for Arc<S>`: an already-shared
// `Arc<dyn Subsystem>` handle goes through `Catalog::register_arc`, which
// preserves the handle's identity. A blanket impl would let
// `Catalog::register(handle)` compile and silently wrap the Arc in a
// second Arc — double indirection, and `Arc::ptr_eq` sharing checks
// between the caller's handle and the registry entry would quietly fail.
// (Arc's `Deref` already lets `&Arc<dyn Subsystem>` call every method.)

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let q = AtomicQuery::new("Artist", Target::text("Beatles"));
        assert_eq!(format!("{q}"), "Artist = \"Beatles\"");
        let q = AtomicQuery::new("Year", Target::Number(1969.0));
        assert_eq!(format!("{q}"), "Year = 1969");
        let q = AtomicQuery::new("Review", Target::terms(&["psychedelic", "rock"]));
        assert_eq!(format!("{q}"), "Review = psychedelic rock");
    }

    #[test]
    fn error_messages() {
        let e = SubsystemError::UnknownAttribute {
            attribute: "Shape".into(),
            subsystem: "relational".into(),
        };
        assert!(format!("{e}").contains("Shape"));
    }
}
