//! Property tests over randomly generated subsystem contents: every source
//! any subsystem produces must be a lawful graded set.

use garlic_core::GradedSource;
use garlic_subsys::{AtomicQuery, QbicStore, RelationalStore, Subsystem, Target, TextStore, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relational_predicate_grades_are_crisp_and_complete(
        artists in proptest::collection::vec(0u8..4, 1..30),
        probe in 0u8..4,
    ) {
        let names = ["Beatles", "Kinks", "Who", "Zombies"];
        let mut store = RelationalStore::new("rel", &["Artist"]);
        for &a in &artists {
            store.insert(vec![Value::text(names[a as usize])]);
        }
        let q = AtomicQuery::new("Artist", Target::text(names[probe as usize]));
        let src = store.evaluate(&q).unwrap();
        prop_assert_eq!(src.len(), artists.len());

        let expected_matches = artists.iter().filter(|&&a| a == probe).count();
        let mut ones = 0;
        for rank in 0..src.len() {
            let e = src.sorted_access(rank).unwrap();
            prop_assert!(e.grade.is_crisp());
            if e.grade == garlic_agg::Grade::ONE {
                ones += 1;
            }
        }
        prop_assert_eq!(ones, expected_matches);
        prop_assert_eq!(
            store.estimate_matches(&q),
            Some(expected_matches)
        );
    }

    #[test]
    fn qbic_similarities_are_valid_and_order_consistently(n in 1usize..60, seed in 0u64..300) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let store = QbicStore::synthetic("q", n, &mut rng);
        for (attr, name) in [("Color", "green"), ("Shape", "oval"), ("Texture", "woven")] {
            let src = store.evaluate(&AtomicQuery::new(attr, Target::text(name))).unwrap();
            prop_assert_eq!(src.len(), n);
            let mut prev = garlic_agg::Grade::ONE;
            for rank in 0..n {
                let e = src.sorted_access(rank).unwrap();
                prop_assert!(e.grade <= prev, "{attr} not descending");
                prev = e.grade;
                // Random access must agree.
                prop_assert_eq!(src.random_access(e.object), Some(e.grade));
            }
        }
    }

    #[test]
    fn qbic_internal_conjunction_bounded_by_atomic_grades(n in 1usize..40, seed in 0u64..300) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let store = QbicStore::synthetic("q", n, &mut rng);
        let qs = [
            AtomicQuery::new("Color", Target::text("red")),
            AtomicQuery::new("Texture", Target::text("rough")),
        ];
        let fused = store.evaluate_internal_conjunction(&qs).unwrap();
        let a = store.evaluate(&qs[0]).unwrap();
        let b = store.evaluate(&qs[1]).unwrap();
        for x in 0..n as u64 {
            let id = garlic_core::ObjectId(x);
            let f = fused.random_access(id).unwrap();
            // Product is below both factors (and below min) — the §8
            // semantics divergence is one-sided.
            prop_assert!(f <= a.random_access(id).unwrap());
            prop_assert!(f <= b.random_access(id).unwrap());
        }
    }

    #[test]
    fn text_scores_are_grades_and_empty_query_is_rejected_gracefully(
        n in 1usize..40, vocab in 5usize..40, seed in 0u64..300
    ) {
        let mut rng = garlic_workload::seeded_rng(seed);
        let store = TextStore::synthetic("t", "Body", n, vocab, 12, &mut rng);
        let src = store
            .evaluate(&AtomicQuery::new("Body", Target::terms(&["w0", "w1"])))
            .unwrap();
        prop_assert_eq!(src.len(), n);
        for rank in 0..n {
            let e = src.sorted_access(rank).unwrap();
            prop_assert!(e.grade >= garlic_agg::Grade::ZERO);
            prop_assert!(e.grade <= garlic_agg::Grade::ONE);
        }
    }

    #[test]
    fn every_subsystem_cursor_replays_the_positional_stream(
        n in 1usize..40, seed in 0u64..300, batch in 1usize..9
    ) {
        // The cursor contract (see garlic_core::access docs) must hold for
        // the sources every subsystem family produces, at any batch size.
        let mut rng = garlic_workload::seeded_rng(seed);
        let qbic = QbicStore::synthetic("q", n, &mut rng);
        let text = TextStore::synthetic("t", "Body", n, 20, 8, &mut rng);
        let mut rel = RelationalStore::new("rel", &["Artist"]);
        for i in 0..n {
            rel.insert(vec![Value::text(if i % 3 == 0 { "Beatles" } else { "Kinks" })]);
        }
        let sources: Vec<std::sync::Arc<dyn GradedSource>> = vec![
            qbic.evaluate(&AtomicQuery::new("Color", Target::text("red"))).unwrap(),
            text.evaluate(&AtomicQuery::new("Body", Target::terms(&["w1"]))).unwrap(),
            rel.evaluate(&AtomicQuery::new("Artist", Target::text("Beatles"))).unwrap(),
        ];
        for src in &sources {
            let mut cursor = src.open_sorted();
            let mut streamed = Vec::new();
            while cursor.next_batch(&mut streamed, batch) > 0 {}
            prop_assert_eq!(streamed.len(), n);
            prop_assert_eq!(cursor.position(), n);
            for (rank, entry) in streamed.iter().enumerate() {
                prop_assert_eq!(Some(*entry), src.sorted_access(rank));
            }
        }
    }
}
