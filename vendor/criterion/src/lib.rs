//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored because this workspace builds without network access to a
//! crates registry.
//!
//! Supported surface (what the workspace's five benches use):
//!
//! * [`Criterion`] with `default()` and `sample_size(n)`;
//! * [`Criterion::benchmark_group`] → [`BenchmarkGroup`] with
//!   `bench_function`, `bench_with_input`, and `finish`;
//! * [`BenchmarkId::new`];
//! * [`Bencher::iter`];
//! * the [`criterion_group!`] (both forms) and [`criterion_main!`] macros;
//! * [`black_box`] (a re-export of `std::hint::black_box`).
//!
//! Instead of upstream's statistical engine, each benchmark is timed with a
//! fixed warm-up followed by `sample_size` timed batches, reporting the
//! median and min/max per-iteration time. Honors the standard
//! `cargo bench`-forwarded positional filter argument and ignores harness
//! flags it does not understand (`--bench`, `--exact`, ...), so
//! `cargo bench some_name` behaves as expected.
//!
//! Beyond upstream: [`Criterion::json_path`] (or the `CRITERION_JSON`
//! environment variable) makes the harness also write its results as a
//! machine-readable JSON document when it finishes, so CI can archive
//! benchmark trajectories without scraping stdout.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A benchmark identifier: a function name plus a parameter, printed as
/// `name/parameter` like upstream.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}
impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}
impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.to_string()
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20ms elapsed to size the batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        // Aim for ~2ms per sample, at least one iteration.
        self.iters_per_sample = ((2_000_000 / per_iter.max(1)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Per-iteration (min, median, max) nanoseconds, if any samples ran.
    fn summary(&self) -> Option<(f64, f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        Some((
            per_iter[0],
            per_iter[per_iter.len() / 2],
            per_iter[per_iter.len() - 1],
        ))
    }

    fn report(&self, name: &str) {
        let Some((min, median, max)) = self.summary() else {
            println!("{name:<50} (no samples)");
            return;
        };
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

/// One finished benchmark, as recorded for JSON output.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
    iters_per_sample: u64,
    sample_size: usize,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager: configuration plus the CLI filter.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    json_path: Option<PathBuf>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            filter: None,
            json_path: std::env::var_os("CRITERION_JSON").map(PathBuf::from),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies the positional filter from `cargo bench <filter>`.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Also write results as machine-readable JSON to `path` when the
    /// harness finishes (a shim extension; upstream writes into
    /// `target/criterion/`). The `CRITERION_JSON` environment variable sets
    /// the same thing for unmodified benches.
    pub fn json_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.json_path = Some(path.into());
        self
    }

    /// The results gathered so far, rendered as a JSON document.
    fn render_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                format!(
                    "    {{\"name\": \"{}\", \"median_ns\": {:.2}, \"min_ns\": {:.2}, \
                     \"max_ns\": {:.2}, \"iters_per_sample\": {}, \"sample_size\": {}}}",
                    json_escape(&r.name),
                    r.median_ns,
                    r.min_ns,
                    r.max_ns,
                    r.iters_per_sample,
                    r.sample_size
                )
            })
            .collect();
        format!("{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
    }

    fn flush_json(&self) {
        let Some(path) = &self.json_path else {
            return;
        };
        if self.records.is_empty() {
            return;
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(path, self.render_json()) {
            Ok(()) => println!("benchmark results written to {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl IntoBenchmarkName, f: F) {
        let name = name.into_name();
        self.run_one(&name, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(full_name);
        if let Some((min, median, max)) = bencher.summary() {
            self.records.push(BenchRecord {
                name: full_name.to_owned(),
                min_ns: min,
                median_ns: median,
                max_ns: max,
                iters_per_sample: bencher.iters_per_sample,
                sample_size: bencher.sample_size,
            });
        }
    }

    /// Parses harness CLI arguments the way `cargo bench` delivers them:
    /// the first non-flag positional is the substring filter; known
    /// libtest/criterion flags are ignored.
    pub fn configure_from_args(self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.configure_from(&args)
    }

    /// [`Self::configure_from_args`] over an explicit argument list.
    pub fn configure_from(mut self, args: &[String]) -> Self {
        let mut filter = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--test" | "--exact" | "--nocapture" | "-q" | "--quiet"
                | "--verbose" | "--noplot" => {}
                "--sample-size" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        self.sample_size = n;
                        i += 1;
                    }
                }
                s if s.starts_with('-') => {
                    // Unknown flag: skip it, and when it is not of the
                    // `--flag=value` form, also skip its value argument so
                    // the value is not mistaken for the positional filter
                    // (e.g. `--save-baseline main`).
                    if !s.contains('=') && args.get(i + 1).is_some_and(|v| !v.starts_with('-')) {
                        i += 1;
                    }
                }
                positional => {
                    if filter.is_none() {
                        filter = Some(positional.to_string());
                    }
                }
            }
            i += 1;
        }
        self.with_filter(filter)
    }
}

impl Drop for Criterion {
    /// Flushes the JSON report (if configured) once the harness finishes.
    fn drop(&mut self) {
        self.flush_json();
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkName, f: F) {
        let full = format!("{}/{}", self.name, id.into_name());
        self.criterion.run_one(&full, f);
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into_name());
        self.criterion.run_one(&full, |b| f(b, input));
    }

    /// Closes the group (a no-op here; upstream finalises reports).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.bench_function("square", |b| b.iter(|| black_box(3u64).pow(2)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_filters() {
        let mut c = Criterion::default().sample_size(2);
        bench_square(&mut c);
        // A filter that matches nothing runs nothing (and must not panic).
        let mut filtered = Criterion::default()
            .sample_size(2)
            .with_filter(Some("no-such-bench".into()));
        bench_square(&mut filtered);
    }

    #[test]
    fn benchmark_id_renders_like_upstream() {
        assert_eq!(BenchmarkId::new("fa", 1024).to_string(), "fa/1024");
    }

    fn parse(args: &[&str]) -> Criterion {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Criterion::default().configure_from(&owned)
    }

    #[test]
    fn arg_parsing_takes_first_positional_as_filter() {
        assert_eq!(
            parse(&["--bench", "fa_a0"]).filter.as_deref(),
            Some("fa_a0")
        );
        assert_eq!(parse(&["--bench"]).filter, None);
    }

    #[test]
    fn unknown_flag_value_is_not_mistaken_for_the_filter() {
        // `cargo bench -- --save-baseline main` must not filter on "main".
        assert_eq!(parse(&["--save-baseline", "main"]).filter, None);
        assert_eq!(
            parse(&["--save-baseline", "main", "fa_a0"])
                .filter
                .as_deref(),
            Some("fa_a0")
        );
        // `--flag=value` form consumes nothing extra.
        assert_eq!(
            parse(&["--save-baseline=main", "fa_a0"]).filter.as_deref(),
            Some("fa_a0")
        );
    }

    #[test]
    fn sample_size_flag_is_applied() {
        assert_eq!(parse(&["--sample-size", "7"]).sample_size, 7);
    }

    #[test]
    fn json_records_and_renders_results() {
        let mut c = Criterion::default().sample_size(2);
        bench_square(&mut c);
        assert_eq!(c.records.len(), 2);
        let json = c.render_json();
        assert!(json.contains("\"benchmarks\""));
        assert!(json.contains("\"name\": \"smoke/square\""));
        assert!(json.contains("\"median_ns\""));
        // Filtered-out benches record nothing.
        let mut filtered = Criterion::default()
            .sample_size(2)
            .with_filter(Some("no-such-bench".into()));
        bench_square(&mut filtered);
        assert!(filtered.records.is_empty());
    }

    #[test]
    fn json_file_is_written_on_drop() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_test_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut c = Criterion::default().sample_size(2).json_path(&path);
            bench_square(&mut c);
        } // drop flushes
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("smoke/param/7"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
