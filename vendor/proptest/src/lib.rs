//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored because
//! this workspace builds without network access to a crates registry.
//!
//! Supported surface (what the workspace's property suites use):
//!
//! * the [`proptest!`] macro, including the inner
//!   `#![proptest_config(...)]` attribute and `pat in strategy` arguments;
//! * [`Strategy`] with `prop_map`, plus strategies for primitive ranges,
//!   [`collection::vec`], [`prop_oneof!`], [`strategy::Just`], and tuples;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`;
//! * [`test_runner::Config`] (`ProptestConfig`) with `with_cases`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case index; to
//!   replay, the deterministic per-test seed derivation below reproduces it.
//! * **No persistence files.** Upstream writes `proptest-regressions/*.txt`;
//!   here every run replays the same deterministic sequence, so persistence
//!   is unnecessary (and the workspace policy is to commit none — see
//!   README.md).
//! * Case generation is seeded from `PROPTEST_SEED` (a `u64`) when set,
//!   else from a fixed default, so CI runs are reproducible.

#![forbid(unsafe_code)]
// The `proptest!` doc example must show `#[test]` — the macro's real call
// syntax — which this lint would otherwise flag.
#![allow(clippy::test_attr_in_doctest)]

use rand::prelude::*;

pub mod test_runner {
    //! Runner configuration.

    /// Configuration for a property test (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The source of randomness handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Derives the RNG for one case of one property, deterministically from
    /// the property name, the case index, and the run seed.
    pub fn for_case(test_name: &str, case: u64, run_seed: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ run_seed,
        ))
    }

    /// The run-level seed: `PROPTEST_SEED` if set, else a fixed default.
    pub fn run_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_1996)
    }
}

/// A generator of values of an output type.
///
/// Upstream strategies also know how to *shrink*; this shim only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values to a *dependent strategy* and draws from it.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy, erasing its type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod strategy {
    //! Strategy combinators.

    pub use super::{BoxedStrategy, Map, Strategy};

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut super::TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice among boxed strategies (what [`prop_oneof!`]
    /// expands to).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given options.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut super::TestRng) -> T {
            use rand::Rng;
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The items a property test file conventionally glob-imports.
pub mod prelude {
    pub use super::collection;
    pub use super::strategy::{Just, Union};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use super::{BoxedStrategy, Strategy, TestRng};
}

/// Asserts a condition inside a property; failure reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its assumption does not hold.
///
/// Upstream rejects and regenerates; this shim simply returns from the
/// case closure, which is equivalent for independence-style assumptions.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default())
            $($(#[$meta])* fn $name($($args)*) $body)*);
    };
    (@impl ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let run_seed = $crate::TestRng::run_seed();
                let case = move |rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                    $body
                };
                for i in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), i, run_seed);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| case(&mut rng)),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest (shim): property `{}` failed at case {i}/{} \
                             (run seed {run_seed}); rerun with PROPTEST_SEED={run_seed} to replay",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_draws_from_every_arm(picks in collection::vec(
            prop_oneof![Just(1u8), Just(2u8)], 64
        )) {
            prop_assert!(picks.iter().all(|&p| p == 1 || p == 2));
        }

        #[test]
        fn prop_map_applies(s in (0u8..10).prop_map(|v| v as usize * 2)) {
            prop_assert!(s % 2 == 0 && s < 20);
        }

        #[test]
        fn pattern_arguments_destructure((a, b) in (0u8..4, 10u8..14)) {
            prop_assert!(a < 4);
            prop_assert!((10..14).contains(&b));
        }
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let a = TestRng::for_case("t", 3, 99).0.clone();
        let b = TestRng::for_case("t", 3, 99).0.clone();
        let mut a = a;
        let mut b = b;
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
