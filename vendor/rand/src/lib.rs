//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line), vendored because this workspace builds without network
//! access to a crates registry.
//!
//! Only the surface the workspace actually uses is provided:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits;
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (deterministic per
//!   seed, but **not** bit-compatible with upstream `StdRng`'s ChaCha12
//!   stream; workloads seeded here are reproducible only against this shim);
//! * `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`;
//! * [`seq::SliceRandom`] — `shuffle` and `choose`;
//! * [`distributions::Standard`] / [`distributions::Distribution`], enough
//!   for `gen::<T>()` on the primitive types the workspace draws.
//!
//! The numeric conversions follow the upstream conventions: `f64` samples
//! are taken uniformly from `[0, 1)` with 53 bits of precision, and integer
//! range sampling uses rejection from the high bits (Lemire-style widening
//! multiply) so small ranges are unbiased.

#![forbid(unsafe_code)]

/// The core of a random number generator: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next `u32` of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next `u64` of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 key expansion
    /// (the same convention upstream uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(sample_below(span, rng) as $t)
            }
            fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                if span == 0 || span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/u128 domain: take a raw word.
                    return low.wrapping_add(rng.next_u64() as $t);
                }
                low.wrapping_add(sample_below(span, rng) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased sample from `[0, span)` (`span ≤ u64::MAX`) by rejection on the
/// widening multiply.
fn sample_below<R: RngCore>(span: u128, rng: &mut R) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128);
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit: $t = unit_float(rng) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                // Upstream treats inclusive float ranges as half-open plus the
                // top endpoint with measure-zero probability; this matches.
                Self::sample_half_open(low, high, rng).min(high)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_float<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod distributions {
    //! The standard distribution, enough for `Rng::gen::<T>()`.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: `[0, 1)` for floats, full range for
    /// integers, fair coin for `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed, but not bit-compatible with the
    /// upstream `rand::rngs::StdRng` (ChaCha12) — seeded experiments are
    /// reproducible against this shim only.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring the upstream prelude.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(0..=3u8);
            assert!(v <= 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
