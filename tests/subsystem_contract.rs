//! Every source any subsystem hands to the middleware must honour the
//! Section 4 access contract (descending sorted order, each object exactly
//! once, random access consistent with sorted access) — audited with
//! `garlic::core::validate::validate_source` across the whole subsystem
//! zoo, including the complement adapter.

use garlic::core::complement::ComplementSource;
use garlic::core::validate::validate_source;
use garlic::subsys::cd_store::demo_subsystems;
use garlic::subsys::{
    AtomicQuery, DiskSubsystem, Predicate, QbicStore, Subsystem, Target, TextStore, Value,
};
use garlic::{BlockCache, Grade, SegmentWriter};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn relational_predicates_honour_the_contract() {
    let mut rng = StdRng::seed_from_u64(1);
    let (rel, _, _) = demo_subsystems(&mut rng);
    for q in [
        AtomicQuery::new("Artist", Target::text("Beatles")),
        AtomicQuery::new("Artist", Target::text("Nobody")),
        AtomicQuery::new("Year", Target::Number(1968.0)),
    ] {
        let src = rel.evaluate(&q).unwrap();
        validate_source(&src).unwrap_or_else(|e| panic!("{q}: {e}"));
    }
    // Range predicates too.
    for p in [
        Predicate::Between("Year".into(), 1966.0, 1969.0),
        Predicate::Lt("Year".into(), 1900.0),
        Predicate::Ne("Artist".into(), Value::text("Beatles")),
    ] {
        let src = rel.predicate_source_for(&p).unwrap();
        validate_source(&src).unwrap_or_else(|e| panic!("{p:?}: {e}"));
    }
}

#[test]
fn qbic_queries_honour_the_contract() {
    let mut rng = StdRng::seed_from_u64(2);
    let store = QbicStore::synthetic("qbic", 200, &mut rng);
    for (attr, name) in [
        ("Color", "red"),
        ("Color", "blue"),
        ("Shape", "round"),
        ("Shape", "elongated"),
        ("Texture", "smooth"),
        ("Texture", "striped"),
    ] {
        let src = store
            .evaluate(&AtomicQuery::new(attr, Target::text(name)))
            .unwrap();
        validate_source(&src).unwrap_or_else(|e| panic!("{attr}={name}: {e}"));
    }
    // Internal conjunction output is a graded source too.
    let fused = store
        .evaluate_internal_conjunction(&[
            AtomicQuery::new("Color", Target::text("red")),
            AtomicQuery::new("Shape", Target::text("round")),
        ])
        .unwrap();
    validate_source(&fused).unwrap();
}

#[test]
fn text_queries_honour_the_contract() {
    let mut rng = StdRng::seed_from_u64(3);
    let store = TextStore::synthetic("docs", "Body", 150, 80, 30, &mut rng);
    for terms in [vec!["w1"], vec!["w3", "w7", "w11"], vec!["nosuchword"]] {
        let src = store
            .evaluate(&AtomicQuery::new(
                "Body",
                Target::Terms(terms.iter().map(|t| t.to_string()).collect()),
            ))
            .unwrap();
        validate_source(&src).unwrap_or_else(|e| panic!("{terms:?}: {e}"));
    }
}

#[test]
fn disk_subsystem_honours_the_contract() {
    let dir = std::env::temp_dir().join(format!("garlic-contract-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    // One fuzzy attribute (random grades, heavy ties) and one crisp one.
    let fuzzy: Vec<Grade> = (0..300)
        .map(|_| Grade::clamped(rng.gen_range(0..=10) as f64 / 10.0))
        .collect();
    let crisp: Vec<Grade> = (0..300)
        .map(|_| Grade::from_bool(rng.gen_bool(0.2)))
        .collect();
    let writer = SegmentWriter::with_block_size(128).unwrap();
    writer.write_grades(&dir.join("fuzzy.seg"), &fuzzy).unwrap();
    writer.write_grades(&dir.join("crisp.seg"), &crisp).unwrap();

    let cache = Arc::new(BlockCache::new(8)); // small: audits run under eviction
    let sub = DiskSubsystem::with_cache("disk", 300, Arc::clone(&cache))
        .open_segment("Fuzzy", &dir.join("fuzzy.seg"))
        .unwrap()
        .open_segment("Crisp", &dir.join("crisp.seg"))
        .unwrap();

    for attr in ["Fuzzy", "Crisp"] {
        let q = AtomicQuery::new(attr, Target::text("anything"));
        let src = sub.evaluate(&q).unwrap();
        // Cold (fresh from open) and warm (same handle again) audits.
        validate_source(&src).unwrap_or_else(|e| panic!("{attr} cold: {e}"));
        validate_source(&src).unwrap_or_else(|e| panic!("{attr} warm: {e}"));
    }
    assert!(cache.stats().evictions > 0, "the audit exercised eviction");

    // The crisp attribute's set-access face honours the contract too.
    let set = sub
        .evaluate_set(&AtomicQuery::new("Crisp", Target::text("t")))
        .unwrap();
    validate_source(&set).unwrap();
    assert!(sub.is_crisp("Crisp") && !sub.is_crisp("Fuzzy"));
}

#[test]
fn complemented_subsystem_sources_honour_the_contract() {
    let mut rng = StdRng::seed_from_u64(4);
    let (rel, qbic, text) = demo_subsystems(&mut rng);
    let sources: Vec<std::sync::Arc<dyn garlic::core::GradedSource>> = vec![
        rel.evaluate(&AtomicQuery::new("Artist", Target::text("Kinks")))
            .unwrap(),
        qbic.evaluate(&AtomicQuery::new("AlbumColor", Target::text("red")))
            .unwrap(),
        text.evaluate(&AtomicQuery::new("Review", Target::terms(&["rock"])))
            .unwrap(),
    ];
    for src in sources {
        validate_source(&ComplementSource::new(&src)).unwrap();
    }
}
