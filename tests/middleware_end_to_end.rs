//! End-to-end middleware tests: the full Garlic stack (catalog → planner →
//! executor → subsystems) on the compact-disk demo and on synthetic stores.

use garlic::middleware::{Catalog, Garlic, GarlicQuery, PlannerOptions, Strategy};
use garlic::subsys::cd_store::{demo_albums, demo_subsystems};
use garlic::subsys::{QbicStore, Subsystem, Target};
use garlic::Grade;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    rel: garlic::subsys::RelationalStore,
    qbic: garlic::subsys::QbicStore,
    text: garlic::subsys::TextStore,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        Fixture { rel, qbic, text }
    }

    fn garlic(&self) -> Garlic {
        let mut cat = Catalog::new();
        cat.register(self.rel.clone()).unwrap();
        cat.register(self.qbic.clone()).unwrap();
        cat.register(self.text.clone()).unwrap();
        Garlic::new(cat)
    }
}

/// Section 2's promise: the Beatles/red query returns "a sorted list that
/// contains only albums by the Beatles, where the list is sorted by
/// goodness of match in color".
#[test]
fn beatles_red_returns_only_beatles_sorted_by_color() {
    let f = Fixture::new(1);
    let garlic = f.garlic();
    let q = GarlicQuery::and(
        GarlicQuery::atom("Artist", Target::text("Beatles")),
        GarlicQuery::atom("AlbumColor", Target::text("red")),
    );
    let result = garlic.top_k(&q, 4).unwrap();
    let albums = demo_albums();

    // Every positive-grade answer is a Beatles album.
    for e in result.answers.entries() {
        if e.grade > Grade::ZERO {
            assert_eq!(albums[e.object.index()].artist, "Beatles");
        }
    }
    // Grades descend.
    let grades = result.answers.grades();
    assert!(grades.windows(2).all(|w| w[0] >= w[1]));
}

/// All three conjunction strategies (filtered, A0', naive-calculus via a
/// degenerate plan) agree on the answer grades.
#[test]
fn strategies_agree_on_answers() {
    let f = Fixture::new(2);

    let q = GarlicQuery::and(
        GarlicQuery::atom("Artist", Target::text("Beatles")),
        GarlicQuery::atom("AlbumColor", Target::text("red")),
    );

    // Filtered (the planner's choice for this query).
    let filtered = f.garlic().top_k(&q, 4).unwrap();
    assert!(matches!(filtered.plan.strategy, Strategy::Filtered { .. }));

    // Reference: naive evaluation of the same semantics via core.
    use garlic::agg::iterated::min_agg;
    use garlic::core::algorithms::naive::naive_topk;
    let artist = f
        .rel
        .evaluate(&garlic::subsys::AtomicQuery::new(
            "Artist",
            Target::text("Beatles"),
        ))
        .unwrap();
    let color = f
        .qbic
        .evaluate(&garlic::subsys::AtomicQuery::new(
            "AlbumColor",
            Target::text("red"),
        ))
        .unwrap();
    let reference = naive_topk(&[artist, color], &min_agg(), 4).unwrap();

    assert!(filtered.answers.same_grades(&reference, 1e-12));
}

/// The planner's cost estimates are honest enough: the measured unweighted
/// cost of the filtered strategy never exceeds its estimate by more than a
/// small factor, and B0's estimate is exact.
#[test]
fn estimates_track_measurements() {
    let f = Fixture::new(3);
    let garlic = f.garlic();

    let disj = GarlicQuery::or(
        GarlicQuery::atom("AlbumColor", Target::text("red")),
        GarlicQuery::atom("Shape", Target::text("round")),
    );
    let result = garlic.top_k(&disj, 5).unwrap();
    assert_eq!(result.stats.unweighted() as f64, result.plan.estimated_cost);
}

/// Section 8: internal (product) vs external (min) conjunction produce
/// different grades but both descend and grade the same universe.
#[test]
fn internal_vs_external_semantics_differ_but_are_valid() {
    let f = Fixture::new(4);
    let q = GarlicQuery::and(
        GarlicQuery::atom("AlbumColor", Target::text("red")),
        GarlicQuery::atom("Shape", Target::text("round")),
    );

    let external = f.garlic().top_k(&q, 12).unwrap();

    let mut qbic_only = Catalog::new();
    qbic_only.register(f.qbic.clone()).unwrap();
    let internal = Garlic::with_options(
        qbic_only,
        PlannerOptions {
            prefer_internal: true,
            ..Default::default()
        },
    )
    .top_k(&q, 12)
    .unwrap();

    // Product <= min pointwise, so every internal grade is bounded by the
    // external grade of the same rank... not necessarily rank-wise, but the
    // *top* internal grade cannot exceed the top external grade.
    assert!(internal.answers.grades()[0] <= external.answers.grades()[0]);
    assert_ne!(internal.answers.grades(), external.answers.grades());
}

/// Ten thousand synthetic images through the full middleware: the planner
/// picks A0' and the cost stays well below the naive 2N.
#[test]
fn large_image_store_is_sublinear_through_middleware() {
    let mut rng = StdRng::seed_from_u64(5);
    let qbic = QbicStore::synthetic("big_qbic", 10_000, &mut rng);
    let mut cat = Catalog::new();
    cat.register(qbic.clone()).unwrap();
    let garlic = Garlic::new(cat);

    let q = GarlicQuery::and(
        GarlicQuery::atom("Color", Target::text("blue")),
        GarlicQuery::atom("Shape", Target::text("round")),
    );
    let result = garlic.top_k(&q, 10).unwrap();
    assert_eq!(result.answers.len(), 10);
    assert!(matches!(result.plan.strategy, Strategy::FaMin));
    assert!(
        result.stats.unweighted() < 20_000 / 2,
        "cost {} should be far below the naive 20000",
        result.stats.unweighted()
    );
}

/// Unknown attributes and bad targets surface as errors, not panics.
#[test]
fn error_paths() {
    let f = Fixture::new(6);
    let garlic = f.garlic();

    let unknown = GarlicQuery::atom("Tempo", Target::text("fast"));
    assert!(garlic.top_k(&unknown, 1).is_err());

    let bad_color = GarlicQuery::atom("AlbumColor", Target::text("ultraviolet"));
    assert!(garlic.top_k(&bad_color, 1).is_err());

    let q = GarlicQuery::atom("Artist", Target::text("Beatles"));
    assert!(garlic.top_k(&q, 0).is_err());
    assert!(garlic.top_k(&q, 13).is_err()); // N = 12
}

/// Repeated atoms are evaluated once: Q AND NOT Q plans one source.
#[test]
fn repeated_atom_evaluated_once() {
    let f = Fixture::new(7);
    let garlic = f.garlic();
    let red = GarlicQuery::atom("AlbumColor", Target::text("red"));
    let hard = GarlicQuery::and(red.clone(), GarlicQuery::not(red));
    let result = garlic.top_k(&hard, 1).unwrap();
    assert_eq!(result.plan.atoms.len(), 1);
    // Naive over one list of 12 objects: exactly 12 sorted accesses.
    assert_eq!(result.stats.sorted, 12);
    assert!(result.answers.best().unwrap().grade <= Grade::HALF);
}

/// Single-atom queries work through every entry point.
#[test]
fn single_atom_query() {
    let f = Fixture::new(8);
    let garlic = f.garlic();
    let q = GarlicQuery::atom("Review", Target::terms(&["psychedelic"]));
    let result = garlic.top_k(&q, 3).unwrap();
    assert_eq!(result.answers.len(), 3);
    let grades = result.answers.grades();
    assert!(grades.windows(2).all(|w| w[0] >= w[1]));
}
