//! The write-path acceptance criterion: a [`LiveSource`] must be
//! **indistinguishable** from a freshly built [`MemorySource`] over the
//! same visible contents — same entries, same skeleton tie order, and the
//! same per-source Section 5 billed access counts under every strategy —
//! at every point of its lifecycle: memtable-only, mixed layers, freshly
//! compacted, and reopened after a crash. Durability and write absorption
//! must be invisible to the fusion layer.
//!
//! The suite is model-driven: a deterministic op tape (upserts that
//! overwrite, tombstone deletes, sparse ids) is applied to both the live
//! stores and an in-RAM oracle, and the two worlds are compared at each
//! lifecycle checkpoint. A separate test pins snapshot isolation while a
//! compaction retires the very segment a reader is streaming, and a
//! middleware test pins that a write alone flips the planner's
//! Filtered-vs-stream decision (the stale-footer regression).

use std::collections::BTreeMap;
use std::sync::Arc;

use garlic::agg::iterated::min_agg;
use garlic::core::access::{CountingSource, GradedSource, MemorySource, SetAccess};
use garlic::core::algorithms::b0_max::b0_max_topk;
use garlic::core::algorithms::fa_min::fagin_min_topk;
use garlic::core::algorithms::filtered::filtered_topk;
use garlic::core::algorithms::naive::naive_topk;
use garlic::storage::{LiveOptions, LiveSnapshot, LiveSource};
use garlic::{BlockCache, Grade, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sparse id pool: ids `1, 4, 7, …` prove nothing assumes density.
const POOL: usize = 300;

fn pool_id(i: usize) -> ObjectId {
    ObjectId(1 + 3 * i as u64)
}

fn g(v: f64) -> Grade {
    Grade::clamped(v)
}

/// The in-RAM oracle: one visible map per attribute.
type Model = Vec<BTreeMap<ObjectId, Grade>>;

/// Attribute 0 and 1 are fuzzy, attribute 2 ("K") is crisp. Every op
/// touches the *same object across all attributes*, so the visible object
/// sets (and thus source lengths) stay equal — what every multi-source
/// strategy requires — while grades, overwrites, and tombstones differ
/// freely.
fn apply_ops(rng: &mut StdRng, count: usize, lives: &[LiveSource], model: &mut Model) {
    for _ in 0..count {
        let object = pool_id(rng.gen_range(0..POOL));
        if rng.gen_bool(0.2) {
            for (live, m) in lives.iter().zip(model.iter_mut()) {
                live.delete(object).unwrap();
                m.remove(&object);
            }
        } else {
            for (i, (live, m)) in lives.iter().zip(model.iter_mut()).enumerate() {
                let grade = if i == 2 {
                    Grade::from_bool(rng.gen_bool(0.08))
                } else {
                    g(rng.gen_range(0..=20) as f64 / 20.0)
                };
                live.upsert(object, grade).unwrap();
                m.insert(object, grade);
            }
        }
    }
}

fn oracle_sources(model: &Model) -> Vec<MemorySource> {
    model
        .iter()
        .map(|m| MemorySource::from_pairs(m.iter().map(|(&o, &gr)| (o, gr))))
        .collect()
}

/// The heart of the suite: at one lifecycle checkpoint, the live
/// snapshots and the oracle must agree on raw streams, random access,
/// matching sets, and — across four strategies at three depths — on the
/// answer entries, tie order, and per-source Section 5 bills.
fn assert_live_equals_memory(lives: &[LiveSource], model: &Model, checkpoint: &str) {
    let snaps: Vec<Arc<LiveSnapshot>> = lives.iter().map(|l| l.snapshot()).collect();
    let mems = oracle_sources(model);

    for (i, (snap, mem)) in snaps.iter().zip(&mems).enumerate() {
        assert_eq!(snap.len(), mem.len(), "{checkpoint}: length of attr {i}");
        let (mut live_run, mut mem_run) = (Vec::new(), Vec::new());
        snap.sorted_batch(0, snap.len() + 8, &mut live_run);
        mem.sorted_batch(0, mem.len() + 8, &mut mem_run);
        assert_eq!(
            live_run, mem_run,
            "{checkpoint}: full stream and tie order of attr {i}"
        );
        let probes: Vec<ObjectId> = (0..POOL + 5).map(pool_id).collect();
        let (mut live_hits, mut mem_hits) = (Vec::new(), Vec::new());
        snap.random_batch(&probes, &mut live_hits);
        mem.random_batch(&probes, &mut mem_hits);
        assert_eq!(live_hits, mem_hits, "{checkpoint}: probes of attr {i}");
    }
    assert_eq!(
        snaps[2].matching_set(),
        mems[2].matching_set(),
        "{checkpoint}: crisp match set"
    );

    for k in [1usize, 7, 50] {
        // FaMin (A0') and B0 (max) over the two fuzzy attributes.
        let fuzzy_live: Vec<CountingSource<&LiveSnapshot>> = snaps[..2]
            .iter()
            .map(|s| CountingSource::new(s.as_ref()))
            .collect();
        let fuzzy_mem: Vec<CountingSource<&MemorySource>> =
            mems[..2].iter().map(CountingSource::new).collect();
        for (name, live_top, mem_top) in [
            (
                "FaMin",
                fagin_min_topk(&fuzzy_live, k),
                fagin_min_topk(&fuzzy_mem, k),
            ),
            (
                "B0Max",
                b0_max_topk(&fuzzy_live, k),
                b0_max_topk(&fuzzy_mem, k),
            ),
        ] {
            let (live_top, mem_top) = (live_top.unwrap(), mem_top.unwrap());
            assert_eq!(
                live_top.entries(),
                mem_top.entries(),
                "{checkpoint}: {name} entries at k={k}"
            );
            for (i, (l, m)) in fuzzy_live.iter().zip(&fuzzy_mem).enumerate() {
                assert_eq!(
                    l.stats(),
                    m.stats(),
                    "{checkpoint}: {name} Section 5 bill of source {i} at k={k}"
                );
            }
            fuzzy_live.iter().for_each(|s| s.reset());
            fuzzy_mem.iter().for_each(|s| s.reset());
        }

        // The naive calculus baseline over all three attributes.
        let all_live: Vec<CountingSource<&LiveSnapshot>> = snaps
            .iter()
            .map(|s| CountingSource::new(s.as_ref()))
            .collect();
        let all_mem: Vec<CountingSource<&MemorySource>> =
            mems.iter().map(CountingSource::new).collect();
        let agg = min_agg();
        let live_top = naive_topk(&all_live, &agg, k).unwrap();
        let mem_top = naive_topk(&all_mem, &agg, k).unwrap();
        assert_eq!(
            live_top.entries(),
            mem_top.entries(),
            "{checkpoint}: NaiveCalculus entries at k={k}"
        );
        for (i, (l, m)) in all_live.iter().zip(&all_mem).enumerate() {
            assert_eq!(
                l.stats(),
                m.stats(),
                "{checkpoint}: NaiveCalculus bill of source {i} at k={k}"
            );
        }

        // The filtered ("Beatles") strategy: crisp attr 2 filters, the
        // fuzzy attributes answer random accesses for the matches only.
        let crisp_live = CountingSource::new(snaps[2].as_ref());
        let crisp_mem = CountingSource::new(&mems[2]);
        let graded_live: Vec<CountingSource<&LiveSnapshot>> = snaps[..2]
            .iter()
            .map(|s| CountingSource::new(s.as_ref()))
            .collect();
        let graded_mem: Vec<CountingSource<&MemorySource>> =
            mems[..2].iter().map(CountingSource::new).collect();
        let live_top = filtered_topk(&crisp_live, &graded_live, 0, &agg, k).unwrap();
        let mem_top = filtered_topk(&crisp_mem, &graded_mem, 0, &agg, k).unwrap();
        assert_eq!(
            live_top.entries(),
            mem_top.entries(),
            "{checkpoint}: Filtered entries at k={k}"
        );
        assert_eq!(
            crisp_live.stats(),
            crisp_mem.stats(),
            "{checkpoint}: Filtered bill of the crisp source at k={k}"
        );
        for (i, (l, m)) in graded_live.iter().zip(&graded_mem).enumerate() {
            assert_eq!(
                l.stats(),
                m.stats(),
                "{checkpoint}: Filtered bill of graded source {i} at k={k}"
            );
        }
    }
}

fn store_root(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("garlic-live-eq-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_stores(root: &std::path::Path, cache: &Arc<BlockCache>) -> Vec<LiveSource> {
    (0..3)
        .map(|i| {
            LiveSource::open(
                &root.join(format!("attr{i}")),
                Arc::clone(cache),
                LiveOptions::default(),
            )
            .unwrap()
        })
        .collect()
}

#[test]
fn every_lifecycle_state_is_equivalent_to_memory() {
    let root = store_root("lifecycle");
    let cache = Arc::new(BlockCache::new(512));
    let mut rng = StdRng::seed_from_u64(4096);
    let lives = open_stores(&root, &cache);
    let mut model: Model = vec![BTreeMap::new(); 3];

    // Checkpoint 1: everything lives in the active memtable.
    apply_ops(&mut rng, 200, &lives, &mut model);
    assert!(model[0].len() > 50, "enough survivors for k=50");
    assert_live_equals_memory(&lives, &model, "memtable-only");

    // Checkpoint 2: mixed layers — a frozen memtable under fresh writes.
    for live in &lives {
        live.freeze().unwrap();
    }
    apply_ops(&mut rng, 150, &lives, &mut model);
    assert_live_equals_memory(&lives, &model, "frozen+active");

    // Checkpoint 3: a compacted base segment under fresh overlay writes.
    for live in &lives {
        assert!(live.flush().unwrap());
    }
    apply_ops(&mut rng, 150, &lives, &mut model);
    assert_live_equals_memory(&lives, &model, "base+overlay");

    // Checkpoint 4: fully compacted — answers come straight off segments.
    for live in &lives {
        live.flush().unwrap();
    }
    assert_live_equals_memory(&lives, &model, "post-compaction");

    // Checkpoint 5: crash recovery. Every acknowledged write was fsynced,
    // so reopening replays the exact same visible state.
    drop(lives);
    let lives = open_stores(&root, &cache);
    assert_live_equals_memory(&lives, &model, "post-recovery");

    // And writes keep flowing after recovery.
    apply_ops(&mut rng, 60, &lives, &mut model);
    assert_live_equals_memory(&lives, &model, "post-recovery+writes");
}

#[test]
fn upsert_overwrites_and_tombstones_are_pinned_explicitly() {
    // The targeted cases on top of the randomized tape: an overwrite that
    // moves an object across the ranking, a tombstone over a compacted
    // entry, and a delete-then-reinsert.
    let root = store_root("pinned-cases");
    let cache = Arc::new(BlockCache::new(128));
    let lives = open_stores(&root, &cache);
    let mut model: Model = vec![BTreeMap::new(); 3];

    for i in 0..60usize {
        let object = pool_id(i);
        for (a, (live, m)) in lives.iter().zip(model.iter_mut()).enumerate() {
            let grade = if a == 2 {
                Grade::from_bool(i % 5 == 0)
            } else {
                g((i % 10) as f64 / 10.0)
            };
            live.upsert(object, grade).unwrap();
            m.insert(object, grade);
        }
    }
    for live in &lives {
        live.flush().unwrap();
    }
    // Overwrite: object 0 jumps to the top of both fuzzy rankings.
    for (a, (live, m)) in lives.iter().zip(model.iter_mut()).enumerate() {
        let grade = if a == 2 { Grade::ONE } else { g(0.95) };
        live.upsert(pool_id(0), grade).unwrap();
        m.insert(pool_id(0), grade);
    }
    // Tombstone over compacted entries, plus delete-then-reinsert.
    for (live, m) in lives.iter().zip(model.iter_mut()) {
        live.delete(pool_id(7)).unwrap();
        m.remove(&pool_id(7));
        live.delete(pool_id(8)).unwrap();
        live.upsert(pool_id(8), g(0.33)).unwrap();
        m.insert(pool_id(8), g(0.33));
    }
    assert_live_equals_memory(&lives, &model, "pinned overwrite/tombstone");
    for live in &lives {
        live.flush().unwrap();
    }
    assert_live_equals_memory(&lives, &model, "pinned cases compacted");
}

#[test]
fn a_snapshot_survives_the_compaction_that_retires_its_segment() {
    // A reader pins a snapshot whose base segment is then compacted away
    // (file deleted, cache blocks retired) while the reader is mid-stream.
    // The snapshot must keep serving the exact pinned state.
    let root = store_root("snapshot-isolation");
    let cache = Arc::new(BlockCache::new(64));
    let live = LiveSource::open(
        &root.join("attr"),
        Arc::clone(&cache),
        LiveOptions::default(),
    )
    .unwrap();
    let mut model: BTreeMap<ObjectId, Grade> = BTreeMap::new();
    for i in 0..200usize {
        let grade = g((i % 17) as f64 / 16.0);
        live.upsert(pool_id(i), grade).unwrap();
        model.insert(pool_id(i), grade);
    }
    live.flush().unwrap(); // the snapshot's base segment
    let pinned = live.snapshot();
    let expected = MemorySource::from_pairs(model.iter().map(|(&o, &gr)| (o, gr)));

    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            // Stream slowly, in small batches, while the writer compacts.
            let mut out = Vec::new();
            let mut rank = 0;
            loop {
                let got = pinned.sorted_batch(rank, 16, &mut out);
                rank += got;
                if got < 16 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            out
        });
        // Overwrite everything and compact twice: the pinned snapshot's
        // base segment is deleted and its cache blocks retired mid-read.
        for i in 0..200usize {
            live.upsert(pool_id(i), g(0.01)).unwrap();
        }
        live.flush().unwrap();
        live.delete(pool_id(3)).unwrap();
        live.flush().unwrap();

        let streamed = reader.join().unwrap();
        let mut want = Vec::new();
        expected.sorted_batch(0, expected.len(), &mut want);
        assert_eq!(streamed, want, "the pinned snapshot never tears");
    });

    // And the store's current state moved on underneath it.
    let now = live.snapshot();
    assert_eq!(now.len(), 199);
    assert_eq!(now.random_access(pool_id(3)), None);
    assert_eq!(now.random_access(pool_id(0)), Some(g(0.01)));
    assert_eq!(
        pinned.random_access(pool_id(3)),
        expected.random_access(pool_id(3))
    );
}

#[test]
fn concurrent_readers_see_exactly_one_consistent_snapshot_each() {
    // Background compaction on, tiny memtables, writers hammering: every
    // snapshot any reader takes must be internally consistent — length
    // matches the stream, the stream is strictly skeleton-ordered with no
    // duplicate objects, and random access agrees with the stream.
    let root = store_root("concurrent");
    let cache = Arc::new(BlockCache::new(64));
    let live = LiveSource::open(
        &root.join("attr"),
        Arc::clone(&cache),
        LiveOptions {
            memtable_limit: 32,
            auto_compact: true,
            ..LiveOptions::default()
        },
    )
    .unwrap();
    for i in 0..100usize {
        live.upsert(pool_id(i), g(0.5)).unwrap();
    }

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (stop, live) = (&stop, &live);
        let mut readers = Vec::new();
        for _ in 0..3 {
            readers.push(scope.spawn(move || {
                let mut checked = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = live.snapshot();
                    let mut stream = Vec::new();
                    snap.sorted_batch(0, snap.len() + 8, &mut stream);
                    assert_eq!(stream.len(), snap.len(), "len matches the stream");
                    for w in stream.windows(2) {
                        assert!(
                            w[0].grade > w[1].grade
                                || (w[0].grade == w[1].grade && w[0].object < w[1].object),
                            "strict skeleton order (thus no duplicates)"
                        );
                    }
                    for e in stream.iter().step_by(13) {
                        assert_eq!(
                            snap.random_access(e.object),
                            Some(e.grade),
                            "random access agrees with the stream"
                        );
                    }
                    checked += 1;
                }
                checked
            }));
        }
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1500 {
            let object = pool_id(rng.gen_range(0..POOL));
            if rng.gen_bool(0.25) {
                live.delete(object).unwrap();
            } else {
                live.upsert(object, g(rng.gen_range(0..=100) as f64 / 100.0))
                    .unwrap();
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().unwrap() > 0, "readers made progress");
        }
    });
    assert!(live.last_compact_error().is_none());
}

#[test]
fn a_write_flips_the_planner_decision_without_reopening() {
    // The stale-footer regression (satellite of the write-path issue): the
    // planner's Filtered-vs-stream choice must see memtable deltas. With a
    // permissive crisp attribute the stream strategy wins; after writes
    // shrink the match set, the SAME subsystem instance must flip to
    // Filtered — and answer identically to an in-RAM twin in both states.
    use garlic::middleware::{Catalog, Garlic, GarlicQuery, Strategy};
    use garlic::subsys::{Target, VectorSubsystem};

    const N: usize = 200;
    let root = store_root("planner-flip");
    let mut rng = StdRng::seed_from_u64(7);
    let fuzzy: Vec<Grade> = (0..N)
        .map(|_| g(rng.gen_range(0..=20) as f64 / 20.0))
        .collect();
    let mut crisp: Vec<Grade> = (0..N).map(|i| Grade::from_bool(i < 120)).collect();

    let sub = live_disk_subsystem(&root, &fuzzy, &crisp);
    let k_live = Arc::clone(sub.live_source("K").unwrap());
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    let garlic = Garlic::new(cat);
    let query = GarlicQuery::and(
        GarlicQuery::atom("K", Target::text("t")),
        GarlicQuery::atom("A", Target::text("t")),
    );

    let vector_twin = |crisp: &[Grade]| {
        let mut cat = Catalog::new();
        cat.register(
            VectorSubsystem::new("twin", N)
                .with_list("K", crisp)
                .with_list("A", &fuzzy),
        )
        .unwrap();
        Garlic::new(cat)
    };

    // 120 matches: enumerating them costs more than streaming A0'.
    let before = garlic.top_k(&query, 5).unwrap();
    assert_eq!(before.plan.strategy, Strategy::FaMin);
    let twin = vector_twin(&crisp).top_k(&query, 5).unwrap();
    assert_eq!(before.plan.strategy, twin.plan.strategy);
    assert_eq!(before.answers.entries(), twin.answers.entries());
    assert_eq!(before.stats, twin.stats);

    // Writes shrink the match set to 5 — no reopen, no re-registration.
    for (i, slot) in crisp.iter_mut().enumerate().take(120).skip(5) {
        k_live.upsert(ObjectId(i as u64), Grade::ZERO).unwrap();
        *slot = Grade::ZERO;
    }
    let after = garlic.top_k(&query, 5).unwrap();
    assert_eq!(
        after.plan.strategy,
        Strategy::Filtered { crisp_index: 0 },
        "the planner must see the memtable delta immediately"
    );
    let twin = vector_twin(&crisp).top_k(&query, 5).unwrap();
    assert_eq!(after.plan.strategy, twin.plan.strategy);
    assert_eq!(after.answers.entries(), twin.answers.entries());
    assert_eq!(after.stats, twin.stats);
}

/// Builds the planner-flip fixture: a [`garlic::DiskSubsystem`] with two
/// live attributes, seeded dense so it can be compared against a
/// [`garlic::subsys::VectorSubsystem`] twin.
fn live_disk_subsystem(
    root: &std::path::Path,
    fuzzy: &[Grade],
    crisp: &[Grade],
) -> garlic::DiskSubsystem {
    let sub = garlic::DiskSubsystem::new("live", fuzzy.len())
        .open_live_with("K", &root.join("K"), LiveOptions::default())
        .unwrap()
        .open_live_with("A", &root.join("A"), LiveOptions::default())
        .unwrap();
    for (attr, grades) in [("K", crisp), ("A", fuzzy)] {
        let live = sub.live_source(attr).unwrap();
        for (i, &grade) in grades.iter().enumerate() {
            live.upsert(ObjectId(i as u64), grade).unwrap();
        }
    }
    sub
}
