//! "Continue where we left off" (Section 4): paging through the result set
//! batch-by-batch must agree with one-shot evaluation at every batch
//! boundary, on arbitrary workloads.

use garlic::agg::iterated::min_agg;
use garlic::core::access::MemorySource;
use garlic::core::algorithms::fa::fagin_topk;
use garlic::core::algorithms::resume::ResumableFa;
use garlic::Grade;
use proptest::prelude::*;

fn db_strategy() -> impl Strategy<Value = Vec<Vec<Grade>>> {
    (1..=3usize, 2..=30usize).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            proptest::collection::vec((0.0f64..=1.0).prop_map(Grade::clamped), n..=n),
            m..=m,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paged_equals_one_shot(db in db_strategy(), batch in 1usize..6) {
        let sources: Vec<MemorySource> =
            db.iter().map(|g| MemorySource::from_grades(g)).collect();
        let n = db[0].len();
        let agg = min_agg();

        let mut session = ResumableFa::new(&sources, &agg).unwrap();
        let mut collected: Vec<Grade> = Vec::new();
        while collected.len() < n {
            let chunk = session.next_batch(batch).unwrap();
            if chunk.is_empty() {
                break;
            }
            collected.extend(chunk.grades());
        }

        let reference = fagin_topk(&sources, &agg, n).unwrap();
        prop_assert_eq!(collected.len(), n);
        for (got, want) in collected.iter().zip(reference.grades()) {
            prop_assert!(got.approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn each_prefix_is_a_valid_topk(db in db_strategy()) {
        let sources: Vec<MemorySource> =
            db.iter().map(|g| MemorySource::from_grades(g)).collect();
        let n = db[0].len();
        let agg = min_agg();

        let mut session = ResumableFa::new(&sources, &agg).unwrap();
        let first = session.next_batch(1).unwrap();
        let second = session.next_batch(1).unwrap();

        let top1 = fagin_topk(&sources, &agg, 1).unwrap();
        prop_assert!(first.same_grades(&top1, 1e-12));

        if n >= 2 {
            let top2 = fagin_topk(&sources, &agg, 2).unwrap();
            prop_assert!(second.grades()[0].approx_eq(top2.grades()[1], 1e-12));
        }
    }
}

#[test]
fn session_tracks_progress() {
    let g = |v: f64| Grade::new(v).unwrap();
    let sources = vec![
        MemorySource::from_grades(&[g(0.9), g(0.5), g(0.7), g(0.1)]),
        MemorySource::from_grades(&[g(0.3), g(0.8), g(0.6), g(0.2)]),
    ];
    let agg = min_agg();
    let mut session = ResumableFa::new(&sources, &agg).unwrap();
    assert_eq!(session.returned(), 0);
    session.next_batch(3).unwrap();
    assert_eq!(session.returned(), 3);
    session.next_batch(3).unwrap();
    assert_eq!(session.returned(), 4); // clamped at N
}
