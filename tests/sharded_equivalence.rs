//! The tentpole acceptance property: a query answered over **sharded**
//! attribute lists must be indistinguishable from the same query over flat
//! lists — identical top-k entries, identical tie order, and identical
//! total Section-5 billed accesses — for every shard count, every planner
//! strategy the catalogue can reach, and both the memory and the disk
//! backend. Sharding is an execution layout, never a semantics.

use std::path::PathBuf;
use std::sync::Arc;

use garlic::middleware::{Catalog, Garlic, GarlicQuery, Strategy};
use garlic::subsys::{DiskSubsystem, Target, VectorSubsystem};
use garlic::{BlockCache, Grade, SegmentWriter};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// Quantized fuzzy grades (ties everywhere, so tie order is load-bearing)
/// plus one selective crisp list to make `Filtered` reachable.
fn grade_lists(n: usize, seed: u64) -> Vec<(&'static str, Vec<Grade>)> {
    let mut rng = garlic_workload::seeded_rng(seed);
    use rand::Rng;
    let mut fuzzy = || -> Vec<Grade> {
        (0..n)
            .map(|_| Grade::clamped(rng.gen_range(0..=12) as f64 / 12.0))
            .collect()
    };
    let (a, b) = (fuzzy(), fuzzy());
    let crisp = (0..n)
        .map(|_| Grade::from_bool(rng.gen_bool(0.1)))
        .collect();
    vec![("A", a), ("B", b), ("K", crisp)]
}

/// The strategies the ISSUE names, each exercised by one query shape.
fn strategy_queries() -> Vec<(GarlicQuery, Strategy)> {
    let atom = |a: &str| GarlicQuery::atom(a, Target::text("t"));
    vec![
        (GarlicQuery::and(atom("A"), atom("B")), Strategy::FaMin),
        (GarlicQuery::or(atom("A"), atom("B")), Strategy::B0Max),
        (
            GarlicQuery::and(atom("A"), GarlicQuery::not(atom("B"))),
            Strategy::NaiveCalculus,
        ),
        (
            GarlicQuery::and(atom("K"), atom("A")),
            Strategy::Filtered { crisp_index: 0 },
        ),
    ]
}

fn memory_garlic(lists: &[(&str, Vec<Grade>)], n: usize, shards: Option<usize>) -> Garlic {
    let mut sub = VectorSubsystem::new("vectors", n);
    for (attr, grades) in lists {
        sub = match shards {
            Some(s) => sub.with_sharded_list(attr, grades, s),
            None => sub.with_list(attr, grades),
        };
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

fn segment_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-sharded-eq-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn disk_garlic(lists: &[(&str, Vec<Grade>)], n: usize, shards: Option<usize>, tag: &str) -> Garlic {
    let dir = segment_dir(tag);
    let writer = SegmentWriter::with_block_size(256).unwrap();
    let mut sub = DiskSubsystem::with_cache("segments", n, Arc::new(BlockCache::new(1024)));
    for (attr, grades) in lists {
        sub = match shards {
            Some(s) => {
                let parts = writer
                    .write_sharded_grades(&dir, &format!("{attr}-{tag}"), s, grades)
                    .unwrap();
                sub.open_sharded_segment(attr, parts.iter().map(|p| &p.path))
                    .unwrap()
            }
            None => {
                let path = dir.join(format!("{attr}-{tag}.seg"));
                writer.write_grades(&path, grades).unwrap();
                sub.open_segment(attr, &path).unwrap()
            }
        };
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

fn assert_equivalent(flat: &Garlic, sharded: &Garlic, shards: usize, backend: &str) {
    for (query, expected_strategy) in strategy_queries() {
        for k in [1, 5, 23] {
            let want = flat.top_k(&query, k).unwrap();
            let got = sharded.top_k(&query, k).unwrap();
            assert_eq!(
                want.plan.strategy, expected_strategy,
                "{query} must exercise the intended strategy"
            );
            assert_eq!(
                got.plan.strategy, want.plan.strategy,
                "{backend}/S={shards}: identical plan for {query}"
            );
            assert_eq!(
                got.answers.entries(),
                want.answers.entries(),
                "{backend}/S={shards}: identical entries and tie order for {query} at k={k}"
            );
            assert_eq!(
                got.stats, want.stats,
                "{backend}/S={shards}: identical Section-5 billing for {query} at k={k}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_memory_lists_answer_identically(n in 40usize..160, seed in 0u64..1000) {
        let lists = grade_lists(n, seed);
        let flat = memory_garlic(&lists, n, None);
        for shards in SHARD_COUNTS {
            let sharded = memory_garlic(&lists, n, Some(shards));
            assert_equivalent(&flat, &sharded, shards, "memory");
        }
    }

    #[test]
    fn sharded_disk_segments_answer_identically(n in 40usize..120, seed in 0u64..1000) {
        let lists = grade_lists(n, seed);
        let tag = format!("{n}-{seed}");
        let flat = disk_garlic(&lists, n, None, &tag);
        for shards in SHARD_COUNTS {
            let sharded = disk_garlic(&lists, n, Some(shards), &format!("{tag}-s{shards}"));
            assert_equivalent(&flat, &sharded, shards, "disk");
        }
    }

    #[test]
    fn sharded_disk_matches_sharded_memory(n in 40usize..120, seed in 0u64..1000) {
        // The two sharded backends against each other: layout and
        // durability compose without observable effect.
        let lists = grade_lists(n, seed);
        let mem = memory_garlic(&lists, n, Some(3));
        let disk = disk_garlic(&lists, n, Some(3), &format!("x-{n}-{seed}"));
        assert_equivalent(&mem, &disk, 3, "disk-vs-memory");
    }
}
