//! Direct checks of the paper's named claims, theorem by theorem, on
//! concrete workloads (the asymptotic *shapes* are measured by the
//! `garlic-bench` experiment binaries; these tests pin the exact,
//! non-probabilistic facts).

use garlic::agg::iterated::{max_agg, min_agg};
use garlic::agg::Aggregation;
use garlic::core::access::{counted, total_stats};
use garlic::core::algorithms::b0_max::b0_max_topk;
use garlic::core::algorithms::fa::{fagin_run, FaOptions};
use garlic::core::algorithms::naive::naive_topk;
use garlic::workload::correlation::{hard_query_database, is_complement_pair};
use garlic::workload::distributions::UniformGrades;
use garlic::workload::scoring::ScoringDatabase;
use garlic::workload::skeleton::Skeleton;
use garlic::Grade;

/// Theorem 4.5 / Remark 6.1: B0's cost is exactly m·k sorted accesses and
/// zero random accesses, for any N.
#[test]
fn b0_cost_is_exactly_mk() {
    for (m, n, k) in [(2, 100, 5), (3, 1000, 7), (5, 5000, 2)] {
        let mut rng = garlic::workload::seeded_rng(1);
        let skeleton = Skeleton::random(m, n, &mut rng);
        let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
        let sources = counted(db.to_sources());
        b0_max_topk(&sources, k).unwrap();
        let stats = total_stats(&sources);
        assert_eq!(stats.sorted, (m * k) as u64, "m={m} n={n} k={k}");
        assert_eq!(stats.random, 0);
    }
}

/// A0 stops at exactly the information-theoretic depth T* — the least T
/// with |∩ᵢ X^i_T| ≥ k that Lemma 6.2 says every frugal correct algorithm
/// must reach.
#[test]
fn a0_stops_at_t_star() {
    for seed in 0..20 {
        let mut rng = garlic::workload::seeded_rng(seed);
        let skeleton = Skeleton::random(3, 500, &mut rng);
        let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
        let k = 1 + (seed as usize % 20);
        let run = fagin_run(&db.to_sources(), &min_agg(), k, FaOptions::default()).unwrap();
        assert_eq!(run.stop_depth, skeleton.matching_depth(k), "seed {seed}");
    }
}

/// A0's sorted access cost is exactly m·T (round-robin to the stop depth).
#[test]
fn a0_sorted_cost_is_m_times_depth() {
    let mut rng = garlic::workload::seeded_rng(5);
    let skeleton = Skeleton::random(3, 400, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    let sources = counted(db.to_sources());
    let run = fagin_run(&sources, &min_agg(), 5, FaOptions::default()).unwrap();
    assert_eq!(total_stats(&sources).sorted, (3 * run.stop_depth) as u64);
}

/// Section 7: on the Q ∧ ¬Q instance the top grade is min(g, 1−g) ≤ 1/2,
/// and the winning object is the one with grade closest to 1/2.
#[test]
fn hard_query_semantics() {
    let mut rng = garlic::workload::seeded_rng(77);
    let db = hard_query_database(501, &mut rng);
    assert!(is_complement_pair(&db));

    let top = naive_topk(&db.to_sources(), &min_agg(), 1).unwrap();
    let winner = top.best().unwrap();
    assert!(winner.grade <= Grade::HALF);

    // No object is closer to 1/2 than the winner.
    let q_list = &db.lists()[0];
    for entry in q_list.iter() {
        let dist = (entry.grade.value() - 0.5).abs();
        let win_dist = 0.5 - winner.grade.value();
        assert!(dist >= win_dist - 1e-12);
    }
}

/// Theorem 7.1's lower-bound mechanics: on the reversed-lists instance, the
/// prefix intersection stays empty until depth ⌈N/2⌉, forcing any
/// intersection-driven algorithm to linear depth.
#[test]
fn hard_query_intersection_stays_empty_until_half() {
    let n = 1000;
    let mut rng = garlic::workload::seeded_rng(3);
    let db = hard_query_database(n, &mut rng);
    let run = fagin_run(&db.to_sources(), &min_agg(), 1, FaOptions::default()).unwrap();
    // The two lists are exact reverses: first match at depth ⌈(N+1)/2⌉.
    assert!(run.stop_depth >= n / 2, "depth {} < N/2", run.stop_depth);
}

/// Remark 5.2: with k = N, every algorithm must grade the whole database;
/// A0's cost degenerates to exactly m·N sorted accesses and the output
/// contains every object.
#[test]
fn k_equals_n_is_linear() {
    let (m, n) = (2, 300);
    let mut rng = garlic::workload::seeded_rng(9);
    let skeleton = Skeleton::random(m, n, &mut rng);
    let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
    let sources = counted(db.to_sources());
    let run = fagin_run(&sources, &min_agg(), n, FaOptions::default()).unwrap();
    assert_eq!(run.topk.len(), n);
    assert_eq!(total_stats(&sources).sorted, (m * n) as u64);
}

/// The Bellman–Giertz / Yager / Dubois–Prade uniqueness direction we can
/// check empirically (Theorem 3.1): min/max preserve the lattice identities
/// on arbitrary grades, and every *other* Section 3 t-norm/co-norm pair
/// breaks idempotence.
#[test]
fn theorem_3_1_uniqueness_witnesses() {
    use garlic::agg::{TCoNorm, TNorm};
    let half = Grade::HALF;

    // min/max: idempotent.
    assert_eq!(garlic::agg::tnorms::Minimum.t(half, half), half);
    assert_eq!(garlic::agg::tconorms::Maximum.s(half, half), half);

    // Every other pair: t(x,x) != x for some x (here x = 1/2).
    let others_t: Vec<Box<dyn TNorm>> = vec![
        Box::new(garlic::agg::tnorms::DrasticProduct),
        Box::new(garlic::agg::tnorms::BoundedDifference),
        Box::new(garlic::agg::tnorms::EinsteinProduct),
        Box::new(garlic::agg::tnorms::AlgebraicProduct),
        Box::new(garlic::agg::tnorms::HamacherProduct),
    ];
    for t in others_t {
        assert_ne!(t.t(half, half), half, "{} is idempotent?!", t.name());
    }
}

/// Strictness drives the lower bound; the paper's non-strict escapees (max,
/// median, gymnastics) must be flagged non-strict, the t-norms and means
/// strict.
#[test]
fn strictness_classification() {
    assert!(min_agg().is_strict(3));
    assert!(garlic::agg::means::ArithmeticMean.is_strict(3));
    assert!(garlic::agg::means::GeometricMean.is_strict(3));
    for t in garlic::agg::iterated::all_iterated_tnorms() {
        assert!(t.is_strict(4), "{}", t.name());
    }

    assert!(!max_agg().is_strict(3));
    assert!(!garlic::agg::means::MedianAgg.is_strict(3));
    assert!(!garlic::agg::means::GymnasticsTrimmedMean.is_strict(4));
    assert!(!garlic::agg::order_stat::KthLargest::new(1).is_strict(3));
}

/// The gymnastics aggregation with three judges IS the median
/// (Remark 6.1), and identity (13) evaluates it.
#[test]
fn gymnastics_median_identity() {
    use garlic::agg::order_stat::kth_largest_via_subsets;
    let g = |v: f64| Grade::new(v).unwrap();
    let scores = [g(0.55), g(0.85), g(0.7)];
    let med = garlic::agg::means::MedianAgg.combine(&scores);
    assert_eq!(
        garlic::agg::means::GymnasticsTrimmedMean.combine(&scores),
        med
    );
    assert_eq!(kth_largest_via_subsets(2, &scores), med);
}

/// The Section 5 bracketing inequality (1): for every weighting, the
/// middleware cost sits between min(c1,c2)·(S+R) and max(c1,c2)·(S+R).
#[test]
fn cost_bracketing_inequality() {
    use garlic::core::{AccessStats, CostModel};
    let stats = AccessStats::new(123, 45);
    for (c1, c2) in [(1.0, 1.0), (0.3, 7.0), (5.0, 0.2)] {
        let model = CostModel::new(c1, c2);
        let (lo, hi) = model.bracket(stats);
        let cost = model.middleware_cost(stats);
        assert!(lo <= cost && cost <= hi);
    }
}

/// Positive correlation helps, negative hurts (Section 7's discussion) —
/// checked as a strict cost ordering on one seed triple.
#[test]
fn correlation_orders_cost() {
    use garlic::workload::correlation::latent_database;
    let n = 4000;
    let k = 5;
    let cost_at = |rho: f64| {
        let mut total = 0u64;
        for seed in 0..5 {
            let mut rng = garlic::workload::seeded_rng(400 + seed);
            let db = latent_database(2, n, rho, &mut rng);
            let sources = counted(db.to_sources());
            fagin_run(&sources, &min_agg(), k, FaOptions::default()).unwrap();
            total += total_stats(&sources).unweighted();
        }
        total
    };
    let negative = cost_at(-0.9);
    let independent = cost_at(0.0);
    let positive = cost_at(0.9);
    assert!(
        positive < independent && independent < negative,
        "expected cost(+0.9) < cost(0) < cost(-0.9), got {positive} / {independent} / {negative}"
    );
}
