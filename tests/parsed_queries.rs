//! End-to-end: text queries through the parser, planner, and executor
//! agree with programmatically built queries — and the full §2 example
//! round-trips from its textual form.

use garlic::middleware::{parse_query, Catalog, Garlic, GarlicQuery, Strategy};
use garlic::subsys::cd_store::demo_subsystems;
use garlic::subsys::Target;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    rel: garlic::subsys::RelationalStore,
    qbic: garlic::subsys::QbicStore,
    text: garlic::subsys::TextStore,
}

impl Fixture {
    fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(33);
        let (rel, qbic, text) = demo_subsystems(&mut rng);
        Fixture { rel, qbic, text }
    }

    fn garlic(&self) -> Garlic {
        let mut cat = Catalog::new();
        cat.register(self.rel.clone()).unwrap();
        cat.register(self.qbic.clone()).unwrap();
        cat.register(self.text.clone()).unwrap();
        Garlic::new(cat)
    }
}

#[test]
fn parsed_equals_programmatic() {
    let f = Fixture::new();
    let garlic = f.garlic();

    let parsed = parse_query(r#"Artist = "Beatles" AND AlbumColor = red"#).unwrap();
    let built = GarlicQuery::and(
        GarlicQuery::atom("Artist", Target::text("Beatles")),
        GarlicQuery::atom("AlbumColor", Target::text("red")),
    );
    assert_eq!(parsed, built);

    let via_parsed = garlic.top_k(&parsed, 3).unwrap();
    let via_built = garlic.top_k(&built, 3).unwrap();
    assert_eq!(via_parsed.answers.objects(), via_built.answers.objects());
    assert_eq!(via_parsed.stats, via_built.stats);
}

#[test]
fn every_strategy_is_reachable_from_text() {
    let f = Fixture::new();
    let garlic = f.garlic();

    let cases = [
        (r#"Artist = "Beatles" AND AlbumColor = red"#, "Filtered"),
        ("AlbumColor = red AND Shape = round", "FaMin"),
        ("AlbumColor = red OR Shape = round", "B0Max"),
        (
            r#"AlbumColor = red AND (Shape = round OR Review ~ "rock")"#,
            "FaGeneric",
        ),
        ("AlbumColor = red AND NOT Shape = round", "NaiveCalculus"),
    ];
    for (text, expected) in cases {
        let q = parse_query(text).unwrap();
        let plan = garlic.plan_for(&q, 3).unwrap();
        let got = format!("{:?}", plan.strategy);
        assert!(
            got.starts_with(expected),
            "{text}: expected {expected}, planned {got}"
        );
    }
}

#[test]
fn full_text_search_through_parser() {
    let f = Fixture::new();
    let garlic = f.garlic();
    let q = parse_query(r#"Review ~ "psychedelic rock""#).unwrap();
    let result = garlic.top_k(&q, 2).unwrap();
    assert_eq!(result.answers.len(), 2);
    assert!(result.answers.grades()[0] > garlic::Grade::ZERO);
}

#[test]
fn parse_errors_do_not_reach_execution() {
    assert!(parse_query("Artist = ").is_err());
    assert!(parse_query("AND Artist = x").is_err());
    assert!(parse_query("(Artist = x").is_err());
}

#[test]
fn numeric_atoms_route_to_the_relational_store() {
    let f = Fixture::new();
    let garlic = f.garlic();
    let q = parse_query("Year = 1968 AND AlbumColor = blue").unwrap();
    let result = garlic.top_k(&q, 2).unwrap();
    // Albums from 1968: "Blue Submarine" (blue, obj 1), "Village Dusk"
    // (orange), "Odessey Grove" (purple). Blue Submarine must win.
    assert_eq!(result.answers.entries()[0].object.0, 1);
    assert!(matches!(result.plan.strategy, Strategy::Filtered { .. }));
}
