//! The observability acceptance property: the per-source access counts an
//! executed [`Explain`](garlic::middleware::Explain) trace reports must be
//! **bit-equal** to the Section-5 totals the [`CountingSource`] wrappers
//! bill — for every planner strategy the catalogue can reach, on the
//! memory, disk, and sharded-disk backends. The trace is rendered from the
//! same counters the executor bills against, so there is no second
//! bookkeeping path to drift; these tests pin that invariant.

use std::path::PathBuf;
use std::sync::Arc;

use garlic::middleware::{Catalog, Explain, Garlic, GarlicQuery, Strategy};
use garlic::subsys::{DiskSubsystem, Target, VectorSubsystem};
use garlic::{AccessStats, BlockCache, Grade, SegmentWriter};
use proptest::prelude::*;

/// Quantized fuzzy grades (ties everywhere) plus one selective crisp list,
/// so every strategy the ISSUE names is reachable.
fn grade_lists(n: usize, seed: u64) -> Vec<(&'static str, Vec<Grade>)> {
    let mut rng = garlic_workload::seeded_rng(seed);
    use rand::Rng;
    let mut fuzzy = || -> Vec<Grade> {
        (0..n)
            .map(|_| Grade::clamped(rng.gen_range(0..=15) as f64 / 15.0))
            .collect()
    };
    let (a, b, c) = (fuzzy(), fuzzy(), fuzzy());
    let crisp = (0..n)
        .map(|_| Grade::from_bool(rng.gen_bool(0.08)))
        .collect();
    vec![("A", a), ("B", b), ("C", c), ("K", crisp)]
}

/// One query per strategy named in the acceptance criterion.
fn strategy_queries() -> Vec<(GarlicQuery, Strategy)> {
    let atom = |a: &str| GarlicQuery::atom(a, Target::text("t"));
    vec![
        (GarlicQuery::and(atom("A"), atom("B")), Strategy::FaMin),
        (GarlicQuery::or(atom("A"), atom("C")), Strategy::B0Max),
        (
            GarlicQuery::and(atom("A"), GarlicQuery::not(atom("B"))),
            Strategy::NaiveCalculus,
        ),
        (
            GarlicQuery::and(atom("K"), atom("A")),
            Strategy::Filtered { crisp_index: 0 },
        ),
    ]
}

fn memory_garlic(lists: &[(&str, Vec<Grade>)], n: usize) -> Garlic {
    let mut sub = VectorSubsystem::new("vectors", n);
    for (attr, grades) in lists {
        sub = sub.with_list(attr, grades);
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

fn segment_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-explain-eq-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn disk_garlic(lists: &[(&str, Vec<Grade>)], n: usize, shards: Option<usize>, tag: &str) -> Garlic {
    let dir = segment_dir(tag);
    let writer = SegmentWriter::with_block_size(256).unwrap();
    let mut sub = DiskSubsystem::with_cache("segments", n, Arc::new(BlockCache::new(1024)));
    for (attr, grades) in lists {
        sub = match shards {
            Some(s) => {
                let parts = writer
                    .write_sharded_grades(&dir, &format!("{attr}-{tag}"), s, grades)
                    .unwrap();
                sub.open_sharded_segment(attr, parts.iter().map(|p| &p.path))
                    .unwrap()
            }
            None => {
                let path = dir.join(format!("{attr}-{tag}.seg"));
                writer.write_grades(&path, grades).unwrap();
                sub.open_segment(attr, &path).unwrap()
            }
        };
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

fn summed(ex: &Explain) -> AccessStats {
    ex.per_source
        .iter()
        .fold(AccessStats::default(), |acc, (_, s)| acc + *s)
}

/// The core invariant, asserted for one backend: the executed trace's
/// per-source counts sum bit-equal to the billed total, the rendered span
/// fields carry those exact numbers, and the explained execution returns
/// the same answers and bill a plain `top_k` does.
fn assert_explain_bills_exactly(garlic: &Garlic, backend: &str) {
    for (query, expected_strategy) in strategy_queries() {
        for k in [1, 5, 23] {
            let ex = garlic.explain(&query, k).unwrap();
            assert_eq!(
                ex.plan.strategy, expected_strategy,
                "{backend}: {query} must exercise the intended strategy"
            );
            assert_eq!(
                summed(&ex),
                ex.stats,
                "{backend}: per-source counts must sum bit-equal to the \
                 billed total for {query} at k={k}"
            );
            for (i, (label, s)) in ex.per_source.iter().enumerate() {
                let span = ex
                    .trace
                    .root
                    .find(&format!("source[{i}] \"{label}\""))
                    .unwrap_or_else(|| {
                        panic!("{backend}: trace for {query} is missing source[{i}] \"{label}\"")
                    });
                assert_eq!(
                    span.get_field("S"),
                    Some(s.sorted.to_string().as_str()),
                    "{backend}: sorted count rendered for {label} in {query}"
                );
                assert_eq!(
                    span.get_field("R"),
                    Some(s.random.to_string().as_str()),
                    "{backend}: random count rendered for {label} in {query}"
                );
            }
            // EXPLAIN executes through the same streaming session a paging
            // client uses; the one-shot `top_k` algorithms may schedule
            // random probes (and break zero-grade ties) differently, but
            // the grade sequence must agree and the *bill* must equal a
            // real single-page session's bill exactly.
            let plain = garlic.top_k(&query, k).unwrap();
            let grades =
                |t: &garlic::TopK| -> Vec<Grade> { t.entries().iter().map(|e| e.grade).collect() };
            assert_eq!(
                grades(&ex.answers),
                grades(&plain.answers),
                "{backend}: explaining {query} at k={k} must not change the scores"
            );
            let (pages, paged_stats) = garlic.top_k_paged(&query, &[k]).unwrap();
            assert_eq!(
                ex.answers.entries(),
                pages[0].entries(),
                "{backend}: explain answers match the paged session for {query} at k={k}"
            );
            assert_eq!(
                ex.stats, paged_stats,
                "{backend}: explain bills exactly what a one-page session \
                 bills for {query} at k={k}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn explain_bills_bit_equal_on_memory(n in 40usize..160, seed in 0u64..1000) {
        let lists = grade_lists(n, seed);
        assert_explain_bills_exactly(&memory_garlic(&lists, n), "memory");
    }

    #[test]
    fn explain_bills_bit_equal_on_disk(n in 40usize..120, seed in 0u64..1000) {
        let lists = grade_lists(n, seed);
        let garlic = disk_garlic(&lists, n, None, &format!("flat-{n}-{seed}"));
        assert_explain_bills_exactly(&garlic, "disk");
    }

    #[test]
    fn explain_bills_bit_equal_on_sharded_disk(n in 40usize..120, seed in 0u64..1000) {
        let lists = grade_lists(n, seed);
        let garlic = disk_garlic(&lists, n, Some(3), &format!("shard-{n}-{seed}"));
        assert_explain_bills_exactly(&garlic, "sharded-disk");
    }
}

/// The explained backends must also agree with each other: the trace is an
/// account of the execution, and the execution is backend-invariant.
#[test]
fn explained_backends_agree_with_memory() {
    let n = 300;
    let lists = grade_lists(n, 4242);
    let mem = memory_garlic(&lists, n);
    let disk = disk_garlic(&lists, n, None, "agree-flat");
    let sharded = disk_garlic(&lists, n, Some(3), "agree-shard");

    for (query, _) in strategy_queries() {
        for k in [1, 7, 50] {
            let want = mem.explain(&query, k).unwrap();
            for (name, backend) in [("disk", &disk), ("sharded-disk", &sharded)] {
                let got = backend.explain(&query, k).unwrap();
                assert_eq!(
                    got.answers.entries(),
                    want.answers.entries(),
                    "{name}: entries and tie order for {query} at k={k}"
                );
                assert_eq!(
                    got.stats, want.stats,
                    "{name}: Section-5 billing for {query} at k={k}"
                );
                assert_eq!(
                    summed(&got),
                    summed(&want),
                    "{name}: per-source sums for {query} at k={k}"
                );
            }
        }
    }
}
