//! Concurrent-equivalence suite for the service layer: the same query set,
//! served sequentially and via [`GarlicService`] across worker threads over
//! ONE shared catalog, must produce identical top-k results — same objects,
//! same grades, same tie order — and identical per-query Section 5 access
//! counts. Concurrency is an execution detail; it must never be observable
//! in answers or in measured cost.

use garlic::middleware::{Catalog, Garlic, GarlicQuery, GarlicService, PlannerOptions, Strategy};
use garlic::subsys::{Target, VectorSubsystem};
use garlic::Grade;
use proptest::prelude::*;

/// A federated two-subsystem catalog over randomly graded lists: three
/// fuzzy attributes split across the subsystems, same universe.
fn build_garlic(a: &[u32], b: &[u32], c: &[u32]) -> Garlic {
    let to_grades = |raw: &[u32]| -> Vec<Grade> {
        raw.iter()
            .map(|&v| Grade::clamped(v as f64 / u32::MAX as f64))
            .collect()
    };
    let left = VectorSubsystem::new("left", a.len())
        .with_list("A", &to_grades(a))
        .with_list("B", &to_grades(b));
    let right = VectorSubsystem::new("right", c.len()).with_list("C", &to_grades(c));
    let mut cat = Catalog::new();
    cat.register(left).unwrap();
    cat.register(right).unwrap();
    Garlic::with_options(
        cat,
        PlannerOptions {
            negation_pushdown: false,
            ..Default::default()
        },
    )
}

/// A query pool covering every strategy the planner can choose for these
/// (non-crisp) attributes: A₀′ conjunctions, B₀ disjunctions, generic A₀
/// compounds, and naive-calculus negations.
fn query_pool() -> Vec<GarlicQuery> {
    let a = || GarlicQuery::atom("A", Target::text("t"));
    let b = || GarlicQuery::atom("B", Target::text("t"));
    let c = || GarlicQuery::atom("C", Target::text("t"));
    vec![
        a(),
        GarlicQuery::and(a(), b()),
        GarlicQuery::and(a(), GarlicQuery::and(b(), c())),
        GarlicQuery::or(a(), c()),
        GarlicQuery::or(b(), GarlicQuery::or(a(), c())),
        GarlicQuery::and(a(), GarlicQuery::or(b(), c())),
        GarlicQuery::and(a(), GarlicQuery::not(b())),
        GarlicQuery::and(a(), GarlicQuery::not(a())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property of the concurrent service: >= 8 queries per
    /// batch, multiple worker threads, one shared catalog — results and
    /// per-query access counts identical to sequential execution.
    #[test]
    fn concurrent_batches_equal_sequential_execution(
        a in proptest::collection::vec(0u32..=u32::MAX, 12..40),
        b_seed in proptest::collection::vec(0u32..=u32::MAX, 40),
        c_seed in proptest::collection::vec(0u32..=u32::MAX, 40),
        ks in proptest::collection::vec(1usize..6, 8..14),
    ) {
        let n = a.len();
        let b = &b_seed[..n];
        let c = &c_seed[..n];
        let garlic = build_garlic(&a, b, c);

        let pool = query_pool();
        let requests: Vec<(GarlicQuery, usize)> = ks
            .iter()
            .enumerate()
            .map(|(i, &k)| (pool[i % pool.len()].clone(), k))
            .collect();
        prop_assert!(requests.len() >= 8, "acceptance floor: 8 concurrent queries");

        // Sequential reference on the calling thread...
        let sequential: Vec<_> = requests
            .iter()
            .map(|(q, k)| garlic.top_k(q, *k).unwrap())
            .collect();

        // ...versus the concurrent service over the SAME shared catalog.
        let service = GarlicService::with_threads(garlic, 4);
        prop_assert!(service.threads() >= 2);
        let concurrent = service.top_k_batch(&requests);

        for ((seq, conc), (query, k)) in sequential.iter().zip(&concurrent).zip(&requests) {
            let conc = conc.as_ref().unwrap();
            // Identical answers: same objects, same grades, same tie order.
            prop_assert_eq!(
                seq.answers.entries(),
                conc.answers.entries(),
                "query {} (k = {})", query, k
            );
            // Identical per-query Section 5 access counts.
            prop_assert_eq!(seq.stats, conc.stats, "query {} (k = {})", query, k);
            // And the same chosen strategy.
            prop_assert_eq!(
                std::mem::discriminant(&seq.plan.strategy),
                std::mem::discriminant(&conc.plan.strategy)
            );
        }
    }

    /// Paged sessions opened concurrently page exactly like a sequential
    /// session: "continue where we left off" is per-session state, immune
    /// to other queries running on sibling threads.
    #[test]
    fn concurrent_paging_preserves_session_resumption(
        a in proptest::collection::vec(0u32..=u32::MAX, 10..30),
        b_seed in proptest::collection::vec(0u32..=u32::MAX, 30),
        c_seed in proptest::collection::vec(0u32..=u32::MAX, 30),
    ) {
        let n = a.len();
        let garlic = build_garlic(&a, &b_seed[..n], &c_seed[..n]);
        let queries = query_pool();

        // Reference pagings, single-threaded.
        let reference: Vec<_> = queries
            .iter()
            .map(|q| garlic.top_k_paged(q, &[2, 3]).unwrap())
            .collect();

        // The same pagings, all running simultaneously on worker threads.
        let garlic_ref = &garlic;
        let paged: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| scope.spawn(move || garlic_ref.top_k_paged(q, &[2, 3]).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for ((seq, conc), q) in reference.iter().zip(&paged).zip(&queries) {
            let (seq_batches, seq_stats) = seq;
            let (conc_batches, conc_stats) = conc;
            prop_assert_eq!(seq_batches.len(), conc_batches.len());
            for (x, y) in seq_batches.iter().zip(conc_batches) {
                prop_assert_eq!(x.entries(), y.entries(), "query {}", q);
            }
            prop_assert_eq!(seq_stats, conc_stats, "query {}", q);
        }
    }
}

/// A non-property sanity pin: the planner really does route the pool across
/// distinct strategies, so the equivalence above spans the catalogue.
#[test]
fn query_pool_spans_the_strategy_catalogue() {
    let a: Vec<u32> = (0..20).map(|i| i * 1_000_003).collect();
    let garlic = build_garlic(&a, &a, &a);
    let strategies: Vec<Strategy> = query_pool()
        .iter()
        .map(|q| garlic.plan_for(q, 3).unwrap().strategy)
        .collect();
    assert!(strategies.iter().any(|s| matches!(s, Strategy::FaMin)));
    assert!(strategies.iter().any(|s| matches!(s, Strategy::B0Max)));
    assert!(strategies.iter().any(|s| matches!(s, Strategy::FaGeneric)));
    assert!(strategies
        .iter()
        .any(|s| matches!(s, Strategy::NaiveCalculus)));
}
