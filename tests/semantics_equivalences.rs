//! Theorem 3.1 at property-test strength: the standard min/max calculus
//! preserves every lattice identity (so logically equivalent positive
//! queries grade identically), and the product calculus provides explicit
//! counterexamples — the uniqueness half of the theorem.

use garlic::core::query::{Calculus, Query};
use garlic::Grade;
use garlic_agg::negation::StandardNegation;
use garlic_agg::tconorms::AlgebraicSum;
use garlic_agg::tnorms::AlgebraicProduct;
use proptest::prelude::*;

fn grades3() -> impl Strategy<Value = [Grade; 3]> {
    (
        (0.0f64..=1.0).prop_map(Grade::clamped),
        (0.0f64..=1.0).prop_map(Grade::clamped),
        (0.0f64..=1.0).prop_map(Grade::clamped),
    )
        .prop_map(|(a, b, c)| [a, b, c])
}

fn a() -> Query {
    Query::Atom(0)
}
fn b() -> Query {
    Query::Atom(1)
}
fn c() -> Query {
    Query::Atom(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A ∧ A ≡ A, A ∨ A ≡ A.
    #[test]
    fn idempotence(v in grades3()) {
        let std = Calculus::standard();
        prop_assert_eq!(Query::and(a(), a()).grade(&v, &std), a().grade(&v, &std));
        prop_assert_eq!(Query::or(a(), a()).grade(&v, &std), a().grade(&v, &std));
    }

    /// A ∧ (B ∨ C) ≡ (A ∧ B) ∨ (A ∧ C) and its dual.
    #[test]
    fn distributivity(v in grades3()) {
        let std = Calculus::standard();
        let lhs = Query::and(a(), Query::or(b(), c()));
        let rhs = Query::or(Query::and(a(), b()), Query::and(a(), c()));
        prop_assert_eq!(lhs.grade(&v, &std), rhs.grade(&v, &std));

        let lhs = Query::or(a(), Query::and(b(), c()));
        let rhs = Query::and(Query::or(a(), b()), Query::or(a(), c()));
        prop_assert_eq!(lhs.grade(&v, &std), rhs.grade(&v, &std));
    }

    /// A ∧ (A ∨ B) ≡ A (absorption) and its dual.
    #[test]
    fn absorption(v in grades3()) {
        let std = Calculus::standard();
        prop_assert_eq!(
            Query::and(a(), Query::or(a(), b())).grade(&v, &std),
            a().grade(&v, &std)
        );
        prop_assert_eq!(
            Query::or(a(), Query::and(a(), b())).grade(&v, &std),
            a().grade(&v, &std)
        );
    }

    /// Commutativity and associativity of both connectives.
    #[test]
    fn commutativity_associativity(v in grades3()) {
        let std = Calculus::standard();
        prop_assert_eq!(
            Query::and(a(), b()).grade(&v, &std),
            Query::and(b(), a()).grade(&v, &std)
        );
        prop_assert_eq!(
            Query::and(Query::and(a(), b()), c()).grade(&v, &std),
            Query::and(a(), Query::and(b(), c())).grade(&v, &std)
        );
        prop_assert_eq!(
            Query::or(Query::or(a(), b()), c()).grade(&v, &std),
            Query::or(a(), Query::or(b(), c())).grade(&v, &std)
        );
    }

    /// De Morgan under the standard negation: ¬(A ∧ B) ≡ ¬A ∨ ¬B.
    #[test]
    fn de_morgan(v in grades3()) {
        let std = Calculus::standard();
        let lhs = Query::not(Query::and(a(), b())).grade(&v, &std);
        let rhs = Query::or(Query::not(a()), Query::not(b())).grade(&v, &std);
        prop_assert!(lhs.approx_eq(rhs, 1e-12));
    }

    /// Double negation: ¬¬A ≡ A.
    #[test]
    fn double_negation(v in grades3()) {
        let std = Calculus::standard();
        let lhs = Query::not(Query::not(a())).grade(&v, &std);
        prop_assert!(lhs.approx_eq(a().grade(&v, &std), 1e-12));
    }

    /// Monotonicity of positive queries (what Theorem 4.2 needs): raising
    /// an atom grade never lowers a positive query's grade.
    #[test]
    fn positive_queries_are_monotone(v in grades3(), bump in 0.0f64..=1.0) {
        let std = Calculus::standard();
        let q = Query::and(a(), Query::or(b(), Query::and(a(), c())));
        let base = q.grade(&v, &std);
        for i in 0..3 {
            let mut raised = v;
            raised[i] = Grade::clamped(raised[i].value() + bump);
            prop_assert!(q.grade(&raised, &std) >= base);
        }
    }

    /// The uniqueness half: under the product calculus idempotence FAILS
    /// for every non-crisp grade, pinning min/max as the only
    /// equivalence-preserving monotone rules (Theorem 3.1).
    #[test]
    fn product_calculus_breaks_idempotence(x in 0.01f64..=0.99) {
        let prod = Calculus::new(AlgebraicProduct, AlgebraicSum, StandardNegation);
        let v = [Grade::clamped(x)];
        let conj = Query::and(a(), a()).grade(&v, &prod);
        prop_assert!(conj < v[0]);
    }
}

/// Fuzzy logic is NOT Boolean: excluded middle fails on fuzzy grades
/// (which is exactly why Section 7's Q ∧ ¬Q has satisfying objects at all).
#[test]
fn excluded_middle_fails_fuzzily() {
    let std = Calculus::standard();
    let v = [Grade::HALF];
    let tautology = Query::or(a(), Query::not(a()));
    assert_eq!(tautology.grade(&v, &std), Grade::HALF); // not 1!
    let contradiction = Query::and(a(), Query::not(a()));
    assert_eq!(contradiction.grade(&v, &std), Grade::HALF); // not 0!
}
