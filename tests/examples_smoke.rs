//! Smoke coverage for `examples/`: every example must keep building, and
//! the `quickstart` path is exercised end-to-end in-process so its output
//! claims stay true.

use garlic::agg::iterated::min_agg;
use garlic::core::access::{counted, total_stats, MemorySource};
use garlic::core::algorithms::fa::fagin_topk;
use garlic::core::ObjectId;
use garlic::Grade;

/// Builds every `examples/*.rs` via the same cargo that is running this
/// test. A compile regression in any example fails here rather than rotting
/// silently (examples are not touched by `cargo test` otherwise).
#[test]
fn all_examples_build() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let status = std::process::Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .status()
        .expect("failed to spawn cargo build --examples");
    assert!(status.success(), "cargo build --examples failed: {status}");
}

/// The `quickstart.rs` scenario, asserted rather than printed: two ranked
/// lists, min-rule conjunction, top 3 by A₀.
#[test]
fn quickstart_path_end_to_end() {
    let g = |v: f64| Grade::new(v).expect("grade in [0,1]");
    // Same data as examples/quickstart.rs.
    let color = MemorySource::from_grades(&[g(0.95), g(0.30), g(0.80), g(0.60), g(0.10)]);
    let shape = MemorySource::from_grades(&[g(0.20), g(0.90), g(0.75), g(0.85), g(0.40)]);
    let sources = counted(vec![color, shape]);

    let top = fagin_topk(&sources, &min_agg(), 3).expect("valid query");

    // Per-object min grades: 0.20, 0.30, 0.75, 0.60, 0.10 → top 3 are
    // objects 2 (0.75), 3 (0.60), 1 (0.30), in that order.
    assert_eq!(top.len(), 3);
    assert_eq!(
        top.objects(),
        vec![ObjectId(2), ObjectId(3), ObjectId(1)],
        "ranking under the min rule"
    );
    let grades: Vec<f64> = top.grades().iter().map(|gr| gr.value()).collect();
    assert!(grades[0] - 0.75 < 1e-12 && 0.75 - grades[0] < 1e-12);
    assert!(grades[1] - 0.60 < 1e-12 && 0.60 - grades[1] < 1e-12);
    assert!(grades[2] - 0.30 < 1e-12 && 0.30 - grades[2] < 1e-12);

    // The quickstart's cost claim: the naive algorithm retrieves all
    // 2 × 5 = 10 entries under sorted access; A₀ must not exceed that, and
    // every access must have been metered.
    let stats = total_stats(&sources);
    assert!(stats.sorted > 0, "A₀ must perform sorted accesses");
    assert!(
        stats.sorted <= 10,
        "sorted accesses ({}) exceed the naive bound of 10",
        stats.sorted
    );
}

/// The `persistent_store.rs` scenario, asserted rather than printed: build
/// segments to a temp dir, reopen them cold, and serve parsed queries via
/// `GarlicService` — answers and per-query costs must match the same data
/// served straight from RAM, and the shared cache must actually be used.
#[test]
fn persistent_store_path_end_to_end() {
    use garlic::middleware::{parse_query, Catalog, Garlic, GarlicService};
    use garlic::subsys::{DiskSubsystem, VectorSubsystem};
    use garlic::{BlockCache, SegmentWriter};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    const N: usize = 2_000;
    let dir = std::env::temp_dir().join(format!("garlic-smoke-persistent-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let g = |v: f64| Grade::clamped(v);

    // Build the corpus once, in RAM and on disk.
    let mut rng = StdRng::seed_from_u64(2026);
    let writer = SegmentWriter::new();
    let mut mem = VectorSubsystem::new("mem_store", N);
    let cache = Arc::new(BlockCache::new(64));
    let mut disk = DiskSubsystem::with_cache("disk_store", N, Arc::clone(&cache));
    for attr in ["Color", "Shape", "InStock"] {
        let grades: Vec<Grade> = if attr == "InStock" {
            (0..N)
                .map(|_| Grade::from_bool(rng.gen_bool(0.01)))
                .collect()
        } else {
            (0..N)
                .map(|_| g(rng.gen_range(0..=100) as f64 / 100.0))
                .collect()
        };
        let path = dir.join(format!("{attr}.seg"));
        writer.write_grades(&path, &grades).unwrap();
        mem = mem.with_list(attr, &grades);
        disk = disk.open_segment(attr, &path).unwrap();
    }

    let service = |sub| {
        let mut catalog = Catalog::new();
        catalog.register_arc(sub).unwrap();
        GarlicService::new(Garlic::new(catalog))
    };
    let mem_service = service(Arc::new(mem) as _);
    let disk_service = service(Arc::new(disk) as _);

    let texts = [
        "Color = red AND Shape = round",
        "Color = red OR Shape = round",
        "InStock = yes AND Color = red",
        "Shape = round AND NOT Color = red",
    ];
    let batch: Vec<_> = texts
        .iter()
        .map(|t| (parse_query(t).expect("demo queries parse"), 3))
        .collect();
    for ((query, _), (from_disk, from_mem)) in batch.iter().zip(
        disk_service
            .top_k_batch(&batch)
            .into_iter()
            .zip(mem_service.top_k_batch(&batch)),
    ) {
        let (from_disk, from_mem) = (from_disk.unwrap(), from_mem.unwrap());
        assert_eq!(
            from_disk.answers.entries(),
            from_mem.answers.entries(),
            "{query}"
        );
        assert_eq!(from_disk.stats, from_mem.stats, "{query}");
        assert_eq!(from_disk.plan.strategy, from_mem.plan.strategy, "{query}");
    }
    let stats = cache.stats();
    assert!(stats.misses > 0, "the disk batch faulted blocks in");
    assert!(stats.resident > 0, "blocks stayed resident");
}

/// The `live_store.rs` scenario, asserted rather than printed: stream
/// writes into live attributes, query mid-write, "crash" (drop without
/// flushing), recover from the WAL, compact to segments — the answers
/// must match an in-RAM twin at every step.
#[test]
fn live_store_path_end_to_end() {
    use garlic::middleware::{parse_query, Catalog, Garlic};
    use garlic::subsys::{DiskSubsystem, VectorSubsystem};
    use garlic::BlockCache;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    const N: usize = 600;
    let dir = std::env::temp_dir().join(format!("garlic-smoke-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let attrs = ["Color", "Shape", "InStock"];

    let open = || {
        let cache = Arc::new(BlockCache::new(64));
        let mut sub = DiskSubsystem::with_cache("live_store", N, cache);
        for attr in attrs {
            sub = sub.open_live(attr, &dir.join(attr)).unwrap();
        }
        let handles: Vec<_> = attrs
            .iter()
            .map(|attr| Arc::clone(sub.live_source(attr).unwrap()))
            .collect();
        let mut catalog = Catalog::new();
        catalog.register(sub).unwrap();
        (Garlic::new(catalog), handles)
    };

    // Write the corpus, mirroring it into in-RAM grade lists.
    let mut rng = StdRng::seed_from_u64(2026);
    let (garlic, handles) = open();
    let mut lists = vec![vec![Grade::ZERO; N]; attrs.len()];
    for (a, (handle, list)) in handles.iter().zip(lists.iter_mut()).enumerate() {
        for (i, slot) in list.iter_mut().enumerate() {
            let grade = if a == 2 {
                Grade::from_bool(rng.gen_bool(0.05))
            } else {
                Grade::clamped(rng.gen_range(0..=100) as f64 / 100.0)
            };
            handle.upsert(ObjectId(i as u64), grade).unwrap();
            *slot = grade;
        }
    }

    let texts = [
        "Color = red AND Shape = round",
        "InStock = yes AND Color = red",
    ];
    let check = |garlic: &Garlic, lists: &[Vec<Grade>], step: &str| {
        let mut twin = VectorSubsystem::new("twin", N);
        for (attr, grades) in attrs.iter().zip(lists) {
            twin = twin.with_list(attr, grades);
        }
        let mut catalog = Catalog::new();
        catalog.register(twin).unwrap();
        let twin = Garlic::new(catalog);
        for text in texts {
            let query = parse_query(text).unwrap();
            let live = garlic.top_k(&query, 3).unwrap();
            let want = twin.top_k(&query, 3).unwrap();
            assert_eq!(
                live.answers.entries(),
                want.answers.entries(),
                "{step}: {text}"
            );
            assert_eq!(live.stats, want.stats, "{step}: {text}");
            assert_eq!(live.plan.strategy, want.plan.strategy, "{step}: {text}");
        }
    };
    check(&garlic, &lists, "memtable-only");

    // "Crash" without flushing, then recover: the WAL replays everything.
    drop(garlic);
    drop(handles);
    let (garlic, handles) = open();
    check(&garlic, &lists, "after crash recovery");

    // Compact to segments, then keep writing on top of them.
    for handle in &handles {
        handle.flush().unwrap();
    }
    check(&garlic, &lists, "after compaction");
    for (a, handle) in handles.iter().enumerate() {
        let grade = if a == 2 {
            Grade::ONE
        } else {
            Grade::clamped(0.99)
        };
        handle.upsert(ObjectId(11), grade).unwrap();
        lists[a][11] = grade;
    }
    check(&garlic, &lists, "write after compaction");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `service_demo.rs` scenario, asserted rather than printed: a batch of
/// parsed queries served concurrently over one shared catalog must match
/// serving each query directly, answer for answer and cost for cost.
#[test]
fn service_demo_path_end_to_end() {
    use garlic::middleware::{parse_query, Catalog, Garlic, GarlicService};
    use garlic::subsys::cd_store::demo_subsystems;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(2026);
    let (relational, qbic, text) = demo_subsystems(&mut rng);
    let mut catalog = Catalog::new();
    catalog.register(relational).unwrap();
    catalog.register(qbic).unwrap();
    catalog.register(text).unwrap();
    let service = GarlicService::new(Garlic::new(catalog));

    let texts = [
        r#"Artist = "Beatles" AND AlbumColor = red"#,
        "AlbumColor = red AND Shape = round",
        "AlbumColor = blue OR Shape = round",
        r#"Review ~ "psychedelic rock" AND AlbumColor = red"#,
        "AlbumColor = green AND NOT Shape = round",
        r#"Artist = "Kinks""#,
        "Shape = oval AND AlbumColor = orange",
        r#"Review ~ "gentle folk" OR AlbumColor = purple"#,
    ];
    let batch: Vec<_> = texts
        .iter()
        .map(|t| (parse_query(t).expect("demo queries parse"), 2))
        .collect();

    let results = service.top_k_batch(&batch);
    assert_eq!(results.len(), batch.len());
    for ((query, k), result) in batch.iter().zip(results) {
        let concurrent = result.expect("demo queries execute");
        let direct = service.garlic().top_k(query, *k).unwrap();
        assert_eq!(concurrent.answers.entries(), direct.answers.entries());
        assert_eq!(concurrent.stats, direct.stats);
    }
}
