//! Chaos suite: random fault schedules against the full strategy matrix.
//!
//! The robustness acceptance criterion — under ANY deterministic fault
//! schedule (transient and permanent I/O errors, torn writes, injected
//! latency, in any combination), every query served through the hardened
//! service stack ends in exactly one of three states:
//!
//! 1. **bit-identical** to the fault-free run (transient faults absorbed
//!    by retries, latency absorbed by patience),
//! 2. a **typed error** ([`MiddlewareError::SourceFailed`],
//!    [`MiddlewareError::DeadlineExceeded`], or — for an isolated panic —
//!    [`MiddlewareError::Internal`]), or
//! 3. a **correctly-flagged degraded** result (only possible when the
//!    faulted attribute is sharded with degraded reads enabled).
//!
//! Never an unwinding panic into the caller; never a silently wrong
//! answer. A second "healed disk" phase then clears the schedule and
//! checks determinism again: anything that still answers cleanly answers
//! bit-identically, run after run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use garlic::middleware::{
    Catalog, Garlic, GarlicQuery, GarlicService, MiddlewareError, QueryResult,
};
use garlic::storage::{FaultVfs, Vfs};
use garlic::subsys::{DiskSubsystem, Target};
use garlic::{BlockCache, Grade, SegmentWriter};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fresh directory per proptest case: schedules must not leak between
/// cases through shared segment files.
fn case_dir() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "garlic-chaos-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Three fuzzy lists plus one selective crisp list — the mix that makes
/// the planner's whole catalogue (filtered, A₀ family, B₀, naive)
/// reachable.
fn grade_lists(data_seed: u64, n: usize) -> Vec<(&'static str, Vec<Grade>)> {
    let mut rng = StdRng::seed_from_u64(data_seed);
    let fuzzy = |rng: &mut StdRng| -> Vec<Grade> {
        (0..n)
            .map(|_| Grade::clamped(rng.gen_range(0..=16) as f64 / 16.0))
            .collect()
    };
    vec![
        ("A", fuzzy(&mut rng)),
        ("B", fuzzy(&mut rng)),
        ("C", fuzzy(&mut rng)),
        (
            "K",
            (0..n)
                .map(|_| Grade::from_bool(rng.gen_bool(0.06)))
                .collect(),
        ),
    ]
}

/// Every strategy the planner can choose over these attributes: filtered
/// (crisp `K`), A₀′ conjunctions, generic A₀ compounds, B₀ disjunctions,
/// and naive-calculus negations.
fn query_pool() -> Vec<GarlicQuery> {
    let a = || GarlicQuery::atom("A", Target::text("t"));
    let b = || GarlicQuery::atom("B", Target::text("t"));
    let c = || GarlicQuery::atom("C", Target::text("t"));
    let k = || GarlicQuery::atom("K", Target::text("t"));
    vec![
        a(),
        GarlicQuery::and(a(), b()),
        GarlicQuery::and(a(), GarlicQuery::and(b(), c())),
        GarlicQuery::or(a(), c()),
        GarlicQuery::or(b(), GarlicQuery::or(a(), c())),
        GarlicQuery::and(a(), GarlicQuery::or(b(), c())),
        GarlicQuery::and(k(), a()),
        GarlicQuery::and(k(), GarlicQuery::or(a(), b())),
        GarlicQuery::and(a(), GarlicQuery::not(b())),
    ]
}

/// The fault-free reference: the same segment files served through the
/// real filesystem.
fn reference_garlic(dir: &Path, lists: &[(&'static str, Vec<Grade>)], n: usize) -> Garlic {
    let mut sub = DiskSubsystem::with_cache("disk", n, Arc::new(BlockCache::new(64)));
    for (attr, _) in lists {
        sub = sub
            .open_segment(attr, &dir.join(format!("{attr}.seg")))
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

/// The chaos target: every attribute read through one [`FaultVfs`], with
/// `A` sharded three ways and degraded reads enabled — the one attribute
/// where a permanent fault can degrade instead of fail.
fn chaos_garlic(
    dir: &Path,
    lists: &[(&'static str, Vec<Grade>)],
    n: usize,
) -> (Garlic, Arc<FaultVfs>) {
    let fault = Arc::new(FaultVfs::new());
    let mut sub = DiskSubsystem::with_cache("disk", n, Arc::new(BlockCache::new(64)))
        .with_vfs(Arc::clone(&fault) as Arc<dyn Vfs>)
        .with_degraded_reads();
    for (attr, _) in lists {
        if *attr == "A" {
            let shards: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("A-{i}.seg"))).collect();
            sub = sub.open_sharded_segment(attr, &shards).unwrap();
        } else {
            sub = sub
                .open_segment(attr, &dir.join(format!("{attr}.seg")))
                .unwrap();
        }
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    (Garlic::new(cat), fault)
}

/// The invariant: one of {bit-identical, typed error, flagged degraded}.
///
/// `reference` must come from the same execution path (one-shot vs
/// deadline-carrying session) as the outcome: the paths rank identically
/// but may order grade-0 ties differently, so bit-identity is pinned
/// per path.
fn assert_outcome(
    query: &GarlicQuery,
    outcome: &Result<QueryResult, MiddlewareError>,
    reference: &QueryResult,
) {
    match outcome {
        Ok(res) if !res.degraded => {
            assert_eq!(
                res.answers.entries(),
                reference.answers.entries(),
                "non-degraded chaos answers must be bit-identical ({query}; \
                 chaos plan {:?}, reference plan {:?})",
                res.plan.strategy,
                reference.plan.strategy
            );
            assert_eq!(res.stats, reference.stats, "billing must match ({query})");
        }
        Ok(res) => {
            // Degraded: only the sharded attribute `A` can lose a shard,
            // so the flag may only appear on queries that touch it.
            assert!(
                format!("{query}").contains("(A "),
                "degraded flag without the sharded attribute in the query ({query})"
            );
            assert!(res.answers.len() <= reference.answers.len().max(1));
        }
        Err(
            MiddlewareError::SourceFailed(_)
            | MiddlewareError::DeadlineExceeded
            | MiddlewareError::Internal { .. },
        ) => {}
        Err(other) => {
            panic!("untyped / unexpected failure class for {query}: {other}");
        }
    }
}

/// Case count: 16 locally; CI's chaos job bumps it via `PROPTEST_CASES`
/// and pins `PROPTEST_SEED` to replay fixed schedules.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random fault schedules × the full strategy matrix, served through
    /// the hardened [`GarlicService`]: every outcome is bit-identical,
    /// typed, or flagged degraded — then the disk heals and surviving
    /// answers are bit-identical again.
    #[test]
    fn every_fault_schedule_yields_identical_typed_or_degraded(
        data_seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        n in 48usize..128,
        k in 1usize..6,
    ) {
        let dir = case_dir();
        let lists = grade_lists(data_seed, n);
        let writer = SegmentWriter::with_block_size(256).unwrap();
        for (attr, grades) in &lists {
            writer.write_grades(&dir.join(format!("{attr}.seg")), grades).unwrap();
            if *attr == "A" {
                for (i, shard) in writer
                    .write_sharded_grades(&dir, "A-shard", 3, grades)
                    .unwrap()
                    .into_iter()
                    .enumerate()
                {
                    std::fs::rename(&shard.path, dir.join(format!("A-{i}.seg"))).unwrap();
                }
            }
        }

        let reference = reference_garlic(&dir, &lists, n);
        // The plan is armed only after a clean open: this suite exercises
        // *runtime* faults (open-time faults already surface as typed
        // StorageErrors, covered by the storage crate's own tests).
        let (chaos, fault) = chaos_garlic(&dir, &lists, n);
        fault.seeded_plan(fault_seed, ".seg");

        // On some cases a tight deadline joins the matrix, so cooperative
        // cancellation races real faults.
        let tight_deadline = fault_seed % 5 == 0;
        let mut service = GarlicService::with_threads(chaos, 2).with_admission_limit(8);
        if tight_deadline {
            service = service.with_deadline(Duration::from_micros(fault_seed % 400));
        }

        let pool = query_pool();
        // With a deadline configured the service serves through the
        // resumable session path; its ranking is pinned against a
        // same-path fault-free reference (grade-0 ties may order
        // differently than the one-shot path, legitimately).
        let far_future = std::time::Instant::now() + Duration::from_secs(3600);
        let mut references = Vec::with_capacity(pool.len());
        for query in &pool {
            let want_oneshot = reference.top_k(query, k).unwrap();
            let want_session;
            let want = if tight_deadline {
                want_session = reference
                    .top_k_with_deadline(query, k, Some(far_future))
                    .unwrap();
                &want_session
            } else {
                &want_oneshot
            };
            let got = service.top_k(query, k);
            assert_outcome(query, &got, want);
            references.push(want_oneshot);
        }

        // Heal the disk. Quarantines are sticky for the life of the open
        // segment (by design: fail fast, reopen to recover), so queries
        // may still fail typed or run degraded — but anything that
        // answers cleanly must answer bit-identically, every time.
        fault.clear();
        let healed = GarlicService::with_threads(service.garlic().clone(), 2);
        for (query, want) in pool.iter().zip(&references) {
            let got = healed.top_k(query, k);
            assert_outcome(query, &got, want);
            // Determinism after healing: two runs of the same query agree
            // exactly — same answers or the same failure class.
            let again = healed.top_k(query, k);
            match (&got, &again) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.answers.entries(), y.answers.entries());
                    assert_eq!(x.degraded, y.degraded);
                }
                (Err(_), Err(_)) => {}
                _ => panic!("healed runs of {query} disagree on success vs failure"),
            }
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}
