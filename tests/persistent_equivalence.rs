//! The storage acceptance criterion: a query answered through
//! [`DiskSubsystem`] must return **identical** top-k entries, tie order,
//! and per-source Section-5 access counts to the same data served from
//! [`VectorSubsystem`] — for every planner strategy, one-shot and paged,
//! cold cache and thrashing cache. Durability must be invisible to the
//! fusion layer.

use std::path::PathBuf;
use std::sync::Arc;

use garlic::middleware::{Catalog, Garlic, GarlicQuery, GarlicService, Strategy};
use garlic::subsys::{DiskSubsystem, Target, VectorSubsystem};
use garlic::{BlockCache, Grade, SegmentWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 500;

/// Three fuzzy lists (quantized: ties everywhere) plus one selective crisp
/// list, so the planner's whole catalogue is reachable.
fn grade_lists() -> Vec<(&'static str, Vec<Grade>)> {
    let mut rng = StdRng::seed_from_u64(77);
    let fuzzy = |rng: &mut StdRng| -> Vec<Grade> {
        (0..N)
            .map(|_| Grade::clamped(rng.gen_range(0..=20) as f64 / 20.0))
            .collect()
    };
    vec![
        ("A", fuzzy(&mut rng)),
        ("B", fuzzy(&mut rng)),
        ("C", fuzzy(&mut rng)),
        (
            "K",
            (0..N)
                .map(|_| Grade::from_bool(rng.gen_bool(0.03)))
                .collect(),
        ),
    ]
}

fn segment_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("garlic-persistent-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn vector_garlic(lists: &[(&str, Vec<Grade>)]) -> Garlic {
    let mut sub = VectorSubsystem::new("vectors", N);
    for (attr, grades) in lists {
        sub = sub.with_list(attr, grades);
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

/// Builds (or reuses) the segment files and opens a disk-backed Garlic
/// over them with the given cache.
fn disk_garlic(lists: &[(&str, Vec<Grade>)], cache: Arc<BlockCache>) -> Garlic {
    disk_garlic_versioned(lists, cache, garlic::storage::format::FORMAT_VERSION, "")
}

/// Like [`disk_garlic`], but pinning the segment format version (file
/// names are tagged so v1 and v2 builds coexist in the shared directory).
fn disk_garlic_versioned(
    lists: &[(&str, Vec<Grade>)],
    cache: Arc<BlockCache>,
    version: u32,
    tag: &str,
) -> Garlic {
    let dir = segment_dir();
    let writer = SegmentWriter::with_block_size(256)
        .unwrap()
        .with_version(version)
        .unwrap();
    let mut sub = DiskSubsystem::with_cache("segments", N, cache);
    for (attr, grades) in lists {
        let path = dir.join(format!("{attr}{tag}.seg"));
        writer.write_grades(&path, grades).unwrap();
        sub = sub.open_segment(attr, &path).unwrap();
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

/// A disk-backed Garlic whose every attribute is a 3-shard id-range
/// partition of v2 segments, served through the scatter-gather merge.
fn sharded_disk_garlic(lists: &[(&str, Vec<Grade>)], cache: Arc<BlockCache>) -> Garlic {
    let dir = segment_dir();
    let writer = SegmentWriter::with_block_size(256).unwrap();
    let mut sub = DiskSubsystem::with_cache("segments", N, cache);
    for (attr, grades) in lists {
        let parts = writer
            .write_sharded_grades(&dir, &format!("{attr}-sharded"), 3, grades)
            .unwrap();
        sub = sub
            .open_sharded_segment(attr, parts.iter().map(|p| &p.path))
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.register(sub).unwrap();
    Garlic::new(cat)
}

/// One query per strategy the planner can choose for this catalog.
fn strategy_queries() -> Vec<(GarlicQuery, Strategy)> {
    let atom = |a: &str| GarlicQuery::atom(a, Target::text("t"));
    vec![
        (GarlicQuery::and(atom("A"), atom("B")), Strategy::FaMin),
        (GarlicQuery::or(atom("A"), atom("C")), Strategy::B0Max),
        (
            GarlicQuery::and(atom("C"), GarlicQuery::or(atom("A"), atom("B"))),
            Strategy::FaGeneric,
        ),
        (
            GarlicQuery::and(atom("A"), GarlicQuery::not(atom("B"))),
            Strategy::NaiveCalculus,
        ),
        (
            GarlicQuery::and(atom("K"), atom("A")),
            Strategy::Filtered { crisp_index: 0 },
        ),
    ]
}

#[test]
fn every_strategy_answers_identically_from_disk() {
    let lists = grade_lists();
    let mem = vector_garlic(&lists);
    let disk = disk_garlic(&lists, Arc::new(BlockCache::new(1024)));

    for (query, expected_strategy) in strategy_queries() {
        for k in [1, 7, 50] {
            let from_mem = mem.top_k(&query, k).unwrap();
            let from_disk = disk.top_k(&query, k).unwrap();
            assert_eq!(
                from_mem.plan.strategy, expected_strategy,
                "query {query} must exercise the intended strategy"
            );
            assert_eq!(
                from_disk.plan.strategy, from_mem.plan.strategy,
                "both backends must plan identically for {query}"
            );
            assert_eq!(
                from_disk.answers.entries(),
                from_mem.answers.entries(),
                "identical entries and tie order for {query} at k={k}"
            );
            assert_eq!(
                from_disk.stats, from_mem.stats,
                "identical Section-5 access counts for {query} at k={k}"
            );
        }
    }
}

#[test]
fn format_versions_and_sharding_are_invisible_to_every_strategy() {
    // v1 segments, v2 segments, and 3-shard v2 partitions must all answer
    // with memory's exact entries, tie order, and Section-5 bills — the
    // format migration and the scatter-gather are access-plan details.
    use garlic::storage::format::{FORMAT_V1, FORMAT_VERSION};
    let lists = grade_lists();
    let mem = vector_garlic(&lists);
    let backends = [
        (
            "v1",
            disk_garlic_versioned(&lists, Arc::new(BlockCache::new(1024)), FORMAT_V1, "-v1"),
        ),
        (
            "v2",
            disk_garlic_versioned(
                &lists,
                Arc::new(BlockCache::new(1024)),
                FORMAT_VERSION,
                "-v2",
            ),
        ),
        (
            "sharded-v2",
            sharded_disk_garlic(&lists, Arc::new(BlockCache::new(1024))),
        ),
    ];

    for (query, _) in strategy_queries() {
        for k in [1, 7, 50] {
            let want = mem.top_k(&query, k).unwrap();
            for (name, backend) in &backends {
                let got = backend.top_k(&query, k).unwrap();
                assert_eq!(
                    got.plan.strategy, want.plan.strategy,
                    "{name}: plan for {query} at k={k}"
                );
                assert_eq!(
                    got.answers.entries(),
                    want.answers.entries(),
                    "{name}: entries and tie order for {query} at k={k}"
                );
                assert_eq!(
                    got.stats, want.stats,
                    "{name}: Section-5 access counts for {query} at k={k}"
                );
            }
        }
    }
}

#[test]
fn paged_sessions_answer_identically_from_disk() {
    let lists = grade_lists();
    let mem = vector_garlic(&lists);
    let disk = disk_garlic(&lists, Arc::new(BlockCache::new(1024)));

    let batches = [3usize, 1, 10, 25];
    for (query, _) in strategy_queries() {
        let (mem_pages, mem_stats) = mem.top_k_paged(&query, &batches).unwrap();
        let (disk_pages, disk_stats) = disk.top_k_paged(&query, &batches).unwrap();
        assert_eq!(mem_pages.len(), disk_pages.len());
        for (i, (m, d)) in mem_pages.iter().zip(&disk_pages).enumerate() {
            assert_eq!(d.entries(), m.entries(), "page {i} of {query}");
        }
        assert_eq!(disk_stats, mem_stats, "paging cost for {query}");
    }
}

#[test]
fn cold_and_thrashing_caches_are_invisible_in_answers() {
    let lists = grade_lists();
    let mem = vector_garlic(&lists);
    // A 2-block cache cannot even hold one region: every query runs under
    // constant eviction. A fresh Garlic per query set = fully cold opens.
    let tiny = Arc::new(BlockCache::new(2));
    let disk = disk_garlic(&lists, Arc::clone(&tiny));

    for (query, _) in strategy_queries() {
        let from_mem = mem.top_k(&query, 20).unwrap();
        let from_disk = disk.top_k(&query, 20).unwrap();
        assert_eq!(from_disk.answers.entries(), from_mem.answers.entries());
        assert_eq!(from_disk.stats, from_mem.stats);
    }
    let stats = tiny.stats();
    assert!(stats.evictions > 0, "the tiny cache really thrashed");
    assert!(stats.resident <= 2);
}

#[test]
fn a_cold_reopened_service_pages_identically_to_a_warm_one() {
    // "Resume from a cold cursor": a paging client notes how far it got,
    // the process restarts (new DiskSubsystem, new cache — nothing resident),
    // and the continued stream must match the uninterrupted one.
    let lists = grade_lists();
    let query = GarlicQuery::and(
        GarlicQuery::atom("A", Target::text("t")),
        GarlicQuery::atom("B", Target::text("t")),
    );

    let warm = disk_garlic(&lists, Arc::new(BlockCache::new(1024)));
    let (reference, _) = warm.top_k_paged(&query, &[5, 5, 5, 5]).unwrap();

    // First "process": takes the first two pages.
    let first = disk_garlic(&lists, Arc::new(BlockCache::new(1024)));
    let mut session = first.open_session(&query, 20).unwrap();
    let page0 = session.next_batch(5).unwrap();
    let page1 = session.next_batch(5).unwrap();
    assert_eq!(page0.entries(), reference[0].entries());
    assert_eq!(page1.entries(), reference[1].entries());
    let resumed_at = session.returned();
    drop(session);
    drop(first);

    // Second "process": cold reopen; skip to where the first got, continue.
    let second = disk_garlic(&lists, Arc::new(BlockCache::new(1024)));
    let mut session = second.open_session(&query, 20).unwrap();
    let skipped = session.next_batch(resumed_at).unwrap();
    assert_eq!(skipped.len(), resumed_at);
    let page2 = session.next_batch(5).unwrap();
    let page3 = session.next_batch(5).unwrap();
    assert_eq!(
        page2.entries(),
        reference[2].entries(),
        "cold-resumed page 2"
    );
    assert_eq!(
        page3.entries(),
        reference[3].entries(),
        "cold-resumed page 3"
    );
}

#[test]
fn concurrent_service_batches_answer_identically_from_disk() {
    let lists = grade_lists();
    let mem_service = GarlicService::new(vector_garlic(&lists));
    let disk_service = GarlicService::new(disk_garlic(&lists, Arc::new(BlockCache::new(64))));

    let batch: Vec<(GarlicQuery, usize)> = strategy_queries()
        .into_iter()
        .enumerate()
        .map(|(i, (q, _))| (q, 5 + 3 * i))
        .collect();
    let from_mem = mem_service.top_k_batch(&batch);
    let from_disk = disk_service.top_k_batch(&batch);
    for ((m, d), (q, _)) in from_mem.iter().zip(&from_disk).zip(&batch) {
        let (m, d) = (m.as_ref().unwrap(), d.as_ref().unwrap());
        assert_eq!(d.answers.entries(), m.answers.entries(), "{q}");
        assert_eq!(d.stats, m.stats, "{q}");
    }
}

#[test]
fn catalogs_over_disk_subsystems_introspect_like_any_other() {
    let lists = grade_lists();
    let disk = disk_garlic(&lists, Arc::new(BlockCache::new(16)));
    assert_eq!(disk.catalog().names(), vec!["segments".to_owned()]);
    assert_eq!(disk.catalog().len(), 1);
    assert!(!disk.catalog().is_empty());
    assert_eq!(Catalog::new().names(), Vec::<String>::new());
    assert!(Catalog::new().is_empty());
}
