//! The central correctness property: every specialised algorithm returns
//! the same top-k *grade sequence* as the naive reference evaluation, on
//! arbitrary randomized workloads (Theorems 4.2, 4.4, 4.5; Remark 6.1;
//! Section 9).
//!
//! Object sets may differ under ties — the paper's definition of "the top k
//! answers" allows that — so comparisons are on grades, which are unique.

use garlic::agg::iterated::{max_agg, min_agg};
use garlic::agg::means::MedianAgg;
use garlic::agg::order_stat::KthLargest;
use garlic::agg::Aggregation;
use garlic::core::access::MemorySource;
use garlic::core::algorithms::b0_max::b0_max_topk;
use garlic::core::algorithms::fa::{fagin_run, fagin_topk, FaOptions};
use garlic::core::algorithms::fa_min::fagin_min_topk;
use garlic::core::algorithms::naive::naive_topk;
use garlic::core::algorithms::order_stat::{median_topk, order_statistic_topk};
use garlic::core::algorithms::ullman::{ullman_top1, ullman_topk};
use garlic::Grade;
use proptest::prelude::*;

/// Strategy: a database of `m` lists over `n` objects with grades from a
/// small quantised set (to exercise ties hard) or full-range floats.
fn db_strategy(max_m: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<Grade>>> {
    (1..=max_m, 1..=max_n).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    // Tie-heavy quantised grades.
                    (0u8..=4).prop_map(|q| Grade::clamped(q as f64 / 4.0)),
                    // Arbitrary grades.
                    (0.0f64..=1.0).prop_map(Grade::clamped),
                ],
                n..=n,
            ),
            m..=m,
        )
    })
}

fn to_sources(db: &[Vec<Grade>]) -> Vec<MemorySource> {
    db.iter().map(|g| MemorySource::from_grades(g)).collect()
}

fn assert_matches_naive<A: Aggregation>(db: &[Vec<Grade>], agg: &A, k: usize, what: &str) {
    let sources = to_sources(db);
    let naive = naive_topk(&sources, agg, k).unwrap();
    let fast = fagin_topk(&sources, agg, k).unwrap();
    assert!(
        fast.same_grades(&naive, 1e-12),
        "{what}: A0 {:?} != naive {:?}",
        fast.grades(),
        naive.grades()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fa_matches_naive_for_min(db in db_strategy(4, 40), k_seed in 1usize..40) {
        let n = db[0].len();
        let k = 1 + k_seed % n;
        assert_matches_naive(&db, &min_agg(), k, "min");
    }

    #[test]
    fn fa_matches_naive_for_every_tnorm(db in db_strategy(3, 24), k_seed in 1usize..24) {
        let n = db[0].len();
        let k = 1 + k_seed % n;
        for agg in garlic::agg::iterated::all_iterated_tnorms() {
            assert_matches_naive(&db, &agg, k, &agg.name());
        }
    }

    #[test]
    fn fa_matches_naive_for_means_and_order_stats(db in db_strategy(3, 24), k_seed in 1usize..24) {
        let n = db[0].len();
        let m = db.len();
        let k = 1 + k_seed % n;
        assert_matches_naive(&db, &garlic::agg::means::ArithmeticMean, k, "arithmetic mean");
        assert_matches_naive(&db, &garlic::agg::means::GeometricMean, k, "geometric mean");
        assert_matches_naive(&db, &MedianAgg, k, "median");
        for j in 1..=m {
            assert_matches_naive(&db, &KthLargest::new(j), k, "kth largest");
        }
    }

    #[test]
    fn fa_shrink_variant_matches_plain(db in db_strategy(4, 40), k_seed in 1usize..40) {
        let n = db[0].len();
        let k = 1 + k_seed % n;
        let sources = to_sources(&db);
        let plain = fagin_run(&sources, &min_agg(), k, FaOptions::default()).unwrap();
        let shrunk = fagin_run(&sources, &min_agg(), k,
            FaOptions { shrink_depths: true }).unwrap();
        prop_assert!(shrunk.topk.same_grades(&plain.topk, 1e-12));
        prop_assert!(shrunk.candidates <= plain.candidates);
    }

    #[test]
    fn fa_min_matches_naive(db in db_strategy(4, 40), k_seed in 1usize..40) {
        let n = db[0].len();
        let k = 1 + k_seed % n;
        let sources = to_sources(&db);
        let fast = fagin_min_topk(&sources, k).unwrap();
        let slow = naive_topk(&sources, &min_agg(), k).unwrap();
        prop_assert!(fast.same_grades(&slow, 1e-12));
    }

    #[test]
    fn b0_matches_naive_for_max(db in db_strategy(4, 40), k_seed in 1usize..40) {
        let n = db[0].len();
        let k = 1 + k_seed % n;
        let sources = to_sources(&db);
        let fast = b0_max_topk(&sources, k).unwrap();
        let slow = naive_topk(&sources, &max_agg(), k).unwrap();
        prop_assert!(fast.same_grades(&slow, 1e-12));
    }

    #[test]
    fn median_algorithm_matches_naive(db in db_strategy(3, 20), k_seed in 1usize..20) {
        let n = db[0].len();
        let k = 1 + k_seed % n;
        let sources = to_sources(&db);
        let fast = median_topk(&sources, k).unwrap();
        let slow = naive_topk(&sources, &MedianAgg, k).unwrap();
        prop_assert!(fast.same_grades(&slow, 1e-12));
    }

    #[test]
    fn order_statistics_match_naive(db in db_strategy(4, 16), k_seed in 1usize..16) {
        let n = db[0].len();
        let m = db.len();
        let k = 1 + k_seed % n;
        let sources = to_sources(&db);
        for j in 1..=m {
            let fast = order_statistic_topk(&sources, j, k).unwrap();
            let slow = naive_topk(&sources, &KthLargest::new(j), k).unwrap();
            prop_assert!(fast.same_grades(&slow, 1e-12), "j = {j}");
        }
    }

    #[test]
    fn ullman_matches_naive(db in db_strategy(2, 40), k_seed in 1usize..40) {
        prop_assume!(db.len() == 2);
        let n = db[0].len();
        let k = 1 + k_seed % n;
        let sources = to_sources(&db);
        let top1 = ullman_top1(&sources).unwrap();
        let slow1 = naive_topk(&sources, &min_agg(), 1).unwrap();
        prop_assert!(top1.same_grades(&slow1, 1e-12));

        let fast = ullman_topk(&sources, k).unwrap();
        let slow = naive_topk(&sources, &min_agg(), k).unwrap();
        prop_assert!(fast.same_grades(&slow, 1e-12));
    }

    #[test]
    fn weighted_conjunction_matches_naive(db in db_strategy(3, 20), k_seed in 1usize..20,
                                          w in proptest::collection::vec(0.01f64..10.0, 3)) {
        let n = db[0].len();
        let m = db.len();
        let k = 1 + k_seed % n;
        let agg = garlic::agg::weighted::FaginWimmers::new(min_agg(), &w[..m]);
        assert_matches_naive(&db, &agg, k, "fagin-wimmers weighted");
    }

    /// Correctness is correlation-independent (only the *cost* analysis of
    /// §5 assumes independence): FA must agree with naive on positively and
    /// negatively correlated lists, and on the §7 hard instance.
    #[test]
    fn fa_matches_naive_on_correlated_workloads(seed in 0u64..2000, k in 1usize..20,
                                                rho_idx in 0usize..5) {
        let rho = [-1.0, -0.5, 0.0, 0.5, 1.0][rho_idx];
        let mut rng = garlic::workload::seeded_rng(seed);
        let db = garlic::workload::correlation::latent_database(2, 40, rho, &mut rng);
        let sources = db.to_sources();
        let fast = fagin_topk(&sources, &min_agg(), k).unwrap();
        let slow = naive_topk(&sources, &min_agg(), k).unwrap();
        prop_assert!(fast.same_grades(&slow, 1e-12), "rho = {rho}");
    }

    #[test]
    fn fa_matches_naive_on_hard_instances(seed in 0u64..2000, k in 1usize..10) {
        let mut rng = garlic::workload::seeded_rng(seed);
        let db = garlic::workload::correlation::hard_query_database(25, &mut rng);
        let sources = db.to_sources();
        let fast = fagin_topk(&sources, &min_agg(), k).unwrap();
        let slow = naive_topk(&sources, &min_agg(), k).unwrap();
        prop_assert!(fast.same_grades(&slow, 1e-12));
    }

    /// The complement adapter composes with FA on arbitrary databases:
    /// A ∧ ¬B via ComplementSource equals the naive evaluation of
    /// min(a, 1−b).
    #[test]
    fn complement_composes_with_fa(db in db_strategy(2, 30), k_seed in 1usize..30) {
        prop_assume!(db.len() == 2);
        let n = db[0].len();
        let k = 1 + k_seed % n;
        use garlic::core::complement::ComplementSource;
        use garlic::core::GradedSource;
        let a = MemorySource::from_grades(&db[0]);
        let b = MemorySource::from_grades(&db[1]);
        let pair: Vec<Box<dyn GradedSource>> =
            vec![Box::new(a), Box::new(ComplementSource::new(MemorySource::from_grades(&db[1])))];
        let fast = fagin_topk(&pair, &min_agg(), k).unwrap();

        // Reference: complement grades by hand.
        let complemented: Vec<garlic::Grade> =
            db[1].iter().map(|g| g.complement()).collect();
        let reference_sources = vec![
            MemorySource::from_grades(&db[0]),
            MemorySource::from_grades(&complemented),
        ];
        let slow = naive_topk(&reference_sources, &min_agg(), k).unwrap();
        prop_assert!(fast.same_grades(&slow, 1e-12));
        let _ = b;
    }
}
