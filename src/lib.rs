//! # garlic — reproduction of Fagin, *Combining Fuzzy Information from
//! Multiple Systems* (PODS 1996 / JCSS 58:83–99, 1999)
//!
//! This facade crate re-exports every member of the workspace so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`agg`] — grades, t-norms/co-norms, negations, means, weighted
//!   aggregation, and the monotonicity/strictness properties (paper §3).
//! * [`core`] — graded sets, the sorted/random access model, the middleware
//!   cost model, and the algorithms: A0 (Fagin's Algorithm), A0′ (min),
//!   B0 (max), the median algorithm, Ullman's algorithm, the filtered
//!   strategy, and the naive baseline (paper §2, §4, §5).
//! * [`workload`] — skeletons, scoring databases, grade distributions, and
//!   correlation models, i.e. the probabilistic framework of §5–§7.
//! * [`storage`] — persistent segment storage: immutable checksummed
//!   on-disk graded lists (`SegmentWriter`/`SegmentSource`) behind a
//!   shared LRU `BlockCache`, so collections survive restarts and corpus
//!   size is decoupled from RAM — plus the writable `LiveSource` store
//!   (WAL + memtables + snapshot merge + background compaction) for
//!   collections that change.
//! * [`subsys`] — simulated Garlic subsystems: relational, QBIC-like image
//!   search, text retrieval, and the in-memory/disk-backed precomputed
//!   subsystems (`VectorSubsystem`/`DiskSubsystem`).
//! * [`middleware`] — the Garlic analogue: catalog, planner, executor,
//!   the executed-EXPLAIN surface, and the concurrent `GarlicService`
//!   batch executor over one shared, owned, `Send + Sync` catalog
//!   (paper §2, §4, §8).
//! * [`telemetry`] — the unified observability layer: lock-free metrics
//!   registry (counters, gauges, log₂ latency histograms), pull
//!   collectors, Prometheus/JSON snapshots, and the `QueryTrace` span
//!   tree EXPLAIN renders.
//! * [`stats`] — summaries, regression, tail probabilities, Chernoff
//!   machinery, table output for the experiment harness.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-claim vs.
//! measured-result index.

#![forbid(unsafe_code)]

pub use garlic_agg as agg;
pub use garlic_core as core;
pub use garlic_middleware as middleware;
pub use garlic_stats as stats;
pub use garlic_storage as storage;
pub use garlic_subsys as subsys;
pub use garlic_telemetry as telemetry;
pub use garlic_workload as workload;

pub use garlic_agg::{Aggregation, Grade};
pub use garlic_core::{AccessStats, CostModel, ObjectId, ShardedSource, TopK};
pub use garlic_middleware::{Catalog, Garlic, GarlicService};
pub use garlic_storage::{
    BlockCache, CacheStats, LiveOptions, LiveSnapshot, LiveSource, SegmentSource, SegmentWriter,
    StorageError,
};
pub use garlic_subsys::DiskSubsystem;
pub use garlic_telemetry::{QueryTrace, Telemetry, TelemetrySnapshot};
