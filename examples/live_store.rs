//! Writable graded collections, end to end: open a live store, stream in
//! upserts and deletes, query through the middleware mid-write, "crash"
//! (drop with the memtable unflushed), reopen in a "second process" and
//! watch the WAL hand every acknowledged write back, then compact to
//! immutable segments and query again — same answers at every step.
//!
//! ```sh
//! cargo run --release --example live_store
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use garlic::middleware::{parse_query, Catalog, Garlic};
use garlic::storage::LiveSource;
use garlic::subsys::DiskSubsystem;
use garlic::{BlockCache, Grade, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 5_000;

fn store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("garlic-live-store-{}", std::process::id()))
}

/// Opens (or recovers) the live store and wires it into the middleware.
/// The `Arc<LiveSource>` handles are the write API; the subsystem serves
/// reads from the same state.
fn open_store(cache: &Arc<BlockCache>) -> (Garlic, Vec<Arc<LiveSource>>) {
    let dir = store_dir();
    let sub = DiskSubsystem::with_cache("live_store", N, Arc::clone(cache))
        .open_live("Color", &dir.join("Color"))
        .expect("open live attribute")
        .open_live("Shape", &dir.join("Shape"))
        .expect("open live attribute")
        .open_live("InStock", &dir.join("InStock"))
        .expect("open live attribute");
    let handles: Vec<Arc<LiveSource>> = ["Color", "Shape", "InStock"]
        .iter()
        .map(|attr| Arc::clone(sub.live_source(attr).expect("live attribute")))
        .collect();
    let mut catalog = Catalog::new();
    catalog.register(sub).unwrap();
    (Garlic::new(catalog), handles)
}

fn run_queries(garlic: &Garlic, label: &str) -> Vec<Vec<ObjectId>> {
    let texts = [
        "Color = red AND Shape = round",
        "InStock = yes AND Color = red",
    ];
    println!("-- queries {label} --");
    let mut answers = Vec::new();
    for text in texts {
        let query = parse_query(text).expect("demo queries parse");
        let result = garlic.top_k(&query, 3).expect("demo queries execute");
        println!(
            "top-3 for {query}  [{:?}]  cost: {} sorted + {} random",
            result.plan.strategy, result.stats.sorted, result.stats.random
        );
        for entry in result.answers.entries() {
            println!("  {}  grade {}", entry.object, entry.grade);
        }
        answers.push(result.answers.entries().iter().map(|e| e.object).collect());
    }
    answers
}

fn main() {
    let _ = std::fs::remove_dir_all(store_dir());
    let cache = Arc::new(BlockCache::new(256));
    let mut rng = StdRng::seed_from_u64(2026);

    // "First process": stream the corpus in as writes. Every upsert is
    // WAL-appended and fsynced before it is acknowledged.
    let (garlic, handles) = open_store(&cache);
    for i in 0..N as u64 {
        handles[0]
            .upsert(
                ObjectId(i),
                Grade::clamped(rng.gen_range(0..=100) as f64 / 100.0),
            )
            .unwrap();
        handles[1]
            .upsert(
                ObjectId(i),
                Grade::clamped(rng.gen_range(0..=100) as f64 / 100.0),
            )
            .unwrap();
        handles[2]
            .upsert(ObjectId(i), Grade::from_bool(rng.gen_bool(0.01)))
            .unwrap();
    }
    // A few corrections: overwrites move objects across the ranking,
    // tombstones remove them — the next snapshot sees it all. Deleting a
    // row means tombstoning it in *every* attribute: the fusion
    // algorithms require all sources to grade the same object universe.
    handles[0].upsert(ObjectId(7), Grade::ONE).unwrap();
    handles[1].upsert(ObjectId(7), Grade::ONE).unwrap();
    for handle in &handles {
        handle.delete(ObjectId(3)).unwrap();
    }
    println!(
        "wrote {} objects; Color: {} live entries, {} WAL bytes, epoch {}\n",
        N,
        handles[0].live_len(),
        handles[0].wal_bytes(),
        handles[0].epoch()
    );
    let before = run_queries(&garlic, "while everything is in memtables");

    // "Crash": drop the store without flushing anything. The memtables
    // die; the WAL is the only survivor.
    drop(garlic);
    drop(handles);

    // "Second process": recovery replays the committed WAL records.
    let (garlic, handles) = open_store(&cache);
    println!(
        "\nrecovered Color: {} live entries, epoch {} (replayed from the WAL)\n",
        handles[0].live_len(),
        handles[0].epoch()
    );
    let recovered = run_queries(&garlic, "after crash recovery");
    assert_eq!(before, recovered, "recovery must reproduce every answer");

    // Compact: freeze the memtables and flush them into checksummed
    // immutable segments; the replayed WALs are garbage-collected.
    for handle in &handles {
        handle.flush().expect("compaction");
    }
    println!(
        "\ncompacted Color: {} WAL bytes, epoch {}, {} frozen layers",
        handles[0].wal_bytes(),
        handles[0].epoch(),
        handles[0].frozen_layers()
    );
    let compacted = run_queries(&garlic, "served from compacted segments");
    assert_eq!(before, compacted, "compaction must be invisible to reads");

    // Writes keep flowing after compaction — the overlay merges over the
    // new base segment seamlessly.
    handles[0].upsert(ObjectId(11), Grade::ONE).unwrap();
    handles[1].upsert(ObjectId(11), Grade::ONE).unwrap();
    run_queries(&garlic, "after one more write on top of the segments");

    println!("\ncache: {}", cache.stats());
    let _ = std::fs::remove_dir_all(store_dir());
}
