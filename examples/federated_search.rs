//! Federated search: every extension in one walkthrough — weighted
//! conjunctions ([FW97], §4), negation pushdown (NNF + complement sources,
//! §7's π_¬Q observation), and paged "next k" browsing (§4's continue-
//! where-we-left-off) — across three subsystems.
//!
//! ```sh
//! cargo run --release --example federated_search
//! ```

use garlic::middleware::{Catalog, Garlic, GarlicQuery, PlannerOptions};
use garlic::subsys::cd_store::{demo_albums, demo_subsystems};
use garlic::subsys::{AtomicQuery, Target};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let (relational, qbic, text) = demo_subsystems(&mut rng);
    let albums = demo_albums();
    let name_of = |i: usize| format!("{} — {}", albums[i].title, albums[i].artist);

    let mut catalog = Catalog::new();
    catalog.register(relational.clone()).unwrap();
    catalog.register(qbic.clone()).unwrap();
    catalog.register(text.clone()).unwrap();
    let garlic = Garlic::with_options(
        catalog,
        PlannerOptions {
            negation_pushdown: true,
            ..Default::default()
        },
    );

    // 1. Weighted conjunction: colour twice as important as review match.
    println!("== weighted: red covers (x2) with rock reviews (x1)");
    let weighted = garlic
        .top_k_weighted(
            &[
                (AtomicQuery::new("AlbumColor", Target::text("red")), 2.0),
                (AtomicQuery::new("Review", Target::terms(&["rock"])), 1.0),
            ],
            3,
        )
        .unwrap();
    for e in weighted.answers.entries() {
        println!("   {:<30} grade {}", name_of(e.object.index()), e.grade);
    }
    println!("   cost: {}\n", weighted.stats);

    // 2. Negation pushdown: red covers that are NOT round — planned as A0
    //    over a complemented (reversed) shape list, not a full scan.
    println!("== negated: red covers that are NOT round (NNF pushdown)");
    let q = GarlicQuery::and(
        GarlicQuery::atom("AlbumColor", Target::text("red")),
        GarlicQuery::not(GarlicQuery::atom("Shape", Target::text("round"))),
    );
    let negated = garlic.top_k(&q, 3).unwrap();
    println!("   strategy: {:?}", negated.plan.strategy);
    for e in negated.answers.entries() {
        println!("   {:<30} grade {}", name_of(e.object.index()), e.grade);
    }
    println!("   cost: {}\n", negated.stats);

    // 3. Paged browsing: "show me 4, then the next 4" — total cost equals
    //    one top-8 evaluation thanks to A0's resumability.
    println!("== paged: psychedelic-or-rock reviews AND red-ish covers, 2 pages of 4");
    let browse = GarlicQuery::and(
        GarlicQuery::atom("AlbumColor", Target::text("red")),
        GarlicQuery::or(
            GarlicQuery::atom("Review", Target::terms(&["psychedelic"])),
            GarlicQuery::atom("Review", Target::terms(&["rock"])),
        ),
    );
    let (pages, stats) = garlic.top_batches(&browse, &[4, 4]).unwrap();
    for (p, page) in pages.iter().enumerate() {
        println!("   page {}:", p + 1);
        for e in page.entries() {
            println!("     {:<28} grade {}", name_of(e.object.index()), e.grade);
        }
    }
    println!("   total cost across both pages: {stats}");
}
