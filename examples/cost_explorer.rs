//! Watch Theorem 5.3 emerge: sweep the database size and print A0's
//! measured middleware cost next to the √(Nk) prediction, plus the fitted
//! exponent. A miniature, chatty version of experiment E01.
//!
//! ```sh
//! cargo run --release --example cost_explorer
//! ```

use garlic::agg::iterated::min_agg;
use garlic::core::access::{counted, total_stats};
use garlic::core::algorithms::fa::fagin_topk;
use garlic::stats::log_log_fit;
use garlic::workload::distributions::UniformGrades;
use garlic::workload::scoring::ScoringDatabase;
use garlic::workload::skeleton::Skeleton;

fn main() {
    let k = 10;
    let m = 2;
    let trials = 10;
    println!("A0 over m = {m} independent lists, k = {k}, {trials} trials per size\n");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>10}",
        "N", "mean cost", "sqrt(N*k)", "ratio"
    );

    let mut ns = Vec::new();
    let mut costs = Vec::new();
    for exp in 0..7 {
        let n = 1000usize << exp;
        let mut total = 0u64;
        for t in 0..trials {
            let mut rng = garlic::workload::seeded_rng(9000 + t);
            let skeleton = Skeleton::random(m, n, &mut rng);
            let db = ScoringDatabase::from_skeleton(&skeleton, &UniformGrades, &mut rng);
            let sources = counted(db.to_sources());
            fagin_topk(&sources, &min_agg(), k).expect("valid parameters");
            total += total_stats(&sources).unweighted();
        }
        let mean = total as f64 / trials as f64;
        let scale = ((n * k) as f64).sqrt();
        println!(
            "{n:>8}  {mean:>12.1}  {scale:>14.1}  {:>10.3}",
            mean / scale
        );
        ns.push(n as f64);
        costs.push(mean);
    }

    let fit = log_log_fit(&ns, &costs);
    println!(
        "\nfitted: cost ≈ {:.2} · N^{:.3}   (paper: Θ(N^0.5) for m = 2)",
        fit.intercept.exp(),
        fit.slope
    );
    println!("R² = {:.4}", fit.r_squared);
    println!(
        "\nDoubling the database multiplies A0's cost by ~{:.2} — not 2.",
        2f64.powf(fit.slope)
    );
}
