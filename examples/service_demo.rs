//! The multi-user middleware, literally: one shared catalog, a
//! `GarlicService` executing a batch of independent queries on a scoped
//! thread pool, and several "user" threads issuing their own queries
//! against the same service — with per-query Section 5 access counts
//! identical to what a sequential run would report.
//!
//! ```sh
//! cargo run --release --example service_demo
//! ```

use std::sync::Arc;

use garlic::middleware::{parse_query, Catalog, Garlic, GarlicService};
use garlic::subsys::cd_store::{demo_albums, demo_subsystems};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let (relational, qbic, text) = demo_subsystems(&mut rng);
    let albums = demo_albums();
    let name_of = |i: usize| format!("{} — {}", albums[i].title, albums[i].artist);

    // One owned catalog: 'static, Send + Sync, shared by every thread below.
    let mut catalog = Catalog::new();
    catalog.register(relational).unwrap();
    catalog.register(qbic).unwrap();
    catalog.register(text).unwrap();
    let service = GarlicService::new(Garlic::new(catalog));
    println!(
        "service over {} subsystems, {} worker threads\n",
        service.garlic().catalog().subsystems().len(),
        service.threads()
    );

    // 1. A batch of independent queries, executed concurrently. Results
    //    come back in request order, each with its own measured cost.
    let texts = [
        r#"Artist = "Beatles" AND AlbumColor = red"#,
        "AlbumColor = red AND Shape = round",
        "AlbumColor = blue OR Shape = round",
        r#"Review ~ "psychedelic rock" AND AlbumColor = red"#,
        "AlbumColor = green AND NOT Shape = round",
        r#"Artist = "Kinks""#,
        "Shape = oval AND AlbumColor = orange",
        r#"Review ~ "gentle folk" OR AlbumColor = purple"#,
    ];
    let batch: Vec<_> = texts
        .iter()
        .map(|t| (parse_query(t).expect("demo queries parse"), 2))
        .collect();

    println!("== batch of {} queries, served concurrently", batch.len());
    for (text, result) in texts.iter().zip(service.top_k_batch(&batch)) {
        let result = result.expect("demo queries execute");
        let best = result
            .answers
            .best()
            .map(|e| format!("{} ({})", name_of(e.object.index()), e.grade))
            .unwrap_or_else(|| "no match".to_owned());
        println!("   {text:<55} -> {best:<40} cost {}", result.stats);
    }

    // 2. The same service shared by concurrent "users": clone handles are
    //    cheap, sessions are independent, answers deterministic.
    println!("\n== four user threads sharing the service");
    let service = Arc::new(service);
    std::thread::scope(|scope| {
        for (user, text) in texts.iter().take(4).enumerate() {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let query = parse_query(text).expect("demo queries parse");
                let result = service.top_k(&query, 1).expect("demo queries execute");
                let answer = result
                    .answers
                    .best()
                    .map(|e| name_of(e.object.index()))
                    .unwrap_or_else(|| "no match".to_owned());
                println!("   user {user}: {text:<55} -> {answer}");
            });
        }
    });
}
