//! Durable graded collections, end to end: build segment files on disk,
//! drop everything, reopen them cold in a "second process", and serve
//! fused top-k queries through `GarlicService` — with the shared block
//! cache's hit/miss/eviction/admission counters showing exactly what the
//! queries cost in I/O terms and what the scan-resistant doorkeeper let
//! into the budget.
//!
//! ```sh
//! cargo run --release --example persistent_store
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use garlic::middleware::{parse_query, Catalog, Garlic, GarlicService};
use garlic::subsys::{DiskSubsystem, Subsystem};
use garlic::{BlockCache, Grade, SegmentWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 20_000;

fn segment_dir() -> PathBuf {
    std::env::temp_dir().join(format!("garlic-persistent-store-{}", std::process::id()))
}

/// "First process": grade the corpus and publish one segment per
/// attribute. Publication is atomic (tmp file + fsync + rename), so a
/// crash mid-build never leaves a half-written segment at the final path.
fn build_segments() -> std::io::Result<()> {
    let dir = segment_dir();
    std::fs::create_dir_all(&dir)?;
    let mut rng = StdRng::seed_from_u64(2026);
    let writer = SegmentWriter::new(); // 4 KiB blocks

    let fuzzy = |rng: &mut StdRng| -> Vec<Grade> {
        (0..N)
            .map(|_| Grade::clamped(rng.gen_range(0..=1000) as f64 / 1000.0))
            .collect()
    };
    for attr in ["Color", "Shape"] {
        let grades = fuzzy(&mut rng);
        let info = writer
            .write_grades(&dir.join(format!("{attr}.seg")), &grades)
            .expect("segment build");
        println!(
            "built {attr}.seg: {} entries, {} blocks/region, {} bytes",
            info.entries, info.blocks_per_region, info.bytes
        );
    }
    // A crisp attribute — a classical predicate, persisted. Its footer
    // records crispness and the exact match count, so the reopened store
    // is immediately eligible for the Section 4 filtered strategy.
    let crisp: Vec<Grade> = (0..N)
        .map(|_| Grade::from_bool(rng.gen_bool(0.002)))
        .collect();
    let info = writer
        .write_grades(&dir.join("InStock.seg"), &crisp)
        .expect("segment build");
    println!(
        "built InStock.seg: crisp = {}, {} exact matches\n",
        info.crisp, info.ones
    );
    Ok(())
}

/// "Second process": no grades in RAM — just segment paths, one shared
/// cache budget, and the same middleware as always.
fn serve() {
    let cache = Arc::new(BlockCache::new(256)); // 256 × 4 KiB = 1 MiB budget
    let dir = segment_dir();
    let store = DiskSubsystem::with_cache("disk_store", N, Arc::clone(&cache))
        .open_segment("Color", &dir.join("Color.seg"))
        .expect("verified open")
        .open_segment("Shape", &dir.join("Shape.seg"))
        .expect("verified open")
        .open_segment("InStock", &dir.join("InStock.seg"))
        .expect("verified open");
    println!(
        "reopened {} segments (each fully checksum-verified); cache: {}",
        store.attributes().len(),
        cache.stats()
    );

    let mut catalog = Catalog::new();
    catalog.register(store).unwrap();
    let service = GarlicService::new(Garlic::new(catalog));

    let texts = [
        "Color = red AND Shape = round",
        "Color = red OR Shape = round",
        "InStock = yes AND Color = red",
        "Shape = round AND NOT Color = red",
    ];
    let batch: Vec<_> = texts
        .iter()
        .map(|t| (parse_query(t).expect("demo queries parse"), 3))
        .collect();
    for ((query, k), result) in batch.iter().zip(service.top_k_batch(&batch)) {
        let result = result.expect("demo queries execute");
        println!("\ntop-{k} for {query}  [{:?}]", result.plan.strategy);
        for entry in result.answers.entries() {
            println!("  {}  grade {}", entry.object, entry.grade);
        }
        println!(
            "  cost: {} sorted + {} random accesses",
            result.stats.sorted, result.stats.random
        );
    }

    let cold = cache.stats();
    println!("\ncache after the cold batch: {cold}");
    // The same batch again: the working set is now resident.
    for result in service.top_k_batch(&batch) {
        result.expect("demo queries execute");
    }
    let warm = cache.stats();
    println!(
        "cache after the warm batch:  {warm} (+{} hits, +{} misses)",
        warm.hits - cold.hits,
        warm.misses - cold.misses
    );
    println!(
        "lifetime hit rate: {:.1}% — tune the cache budget until this \
         stays high for your working set",
        100.0 * warm.hit_rate()
    );
    println!(
        "admission: {} admitted / {} rejected ({:.1}%) — at capacity the \
         TinyLFU doorkeeper only admits blocks requested at least as \
         often as the one they would evict, so one-pass scans cannot \
         flush the hot working set",
        warm.admitted,
        warm.rejected,
        100.0 * warm.admission_rate()
    );
}

fn main() {
    build_segments().expect("building segments");
    serve();
}
