//! Quickstart: top-k over two ranked lists with Fagin's Algorithm.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use garlic::agg::iterated::min_agg;
use garlic::core::access::{counted, total_stats, MemorySource};
use garlic::core::algorithms::fa::fagin_topk;
use garlic::Grade;

fn main() {
    // Two subsystems grade the same five objects: one by colour match, one
    // by shape match (the paper's (Color="red") AND (Shape="round")).
    let g = |v: f64| Grade::new(v).expect("grade in [0,1]");
    let color = MemorySource::from_grades(&[g(0.95), g(0.30), g(0.80), g(0.60), g(0.10)]);
    let shape = MemorySource::from_grades(&[g(0.20), g(0.90), g(0.75), g(0.85), g(0.40)]);

    // Meter every access so we can report the middleware cost (Section 5).
    let sources = counted(vec![color, shape]);

    // The standard fuzzy conjunction takes the min of the two grades.
    let top = fagin_topk(&sources, &min_agg(), 3).expect("valid query");

    println!("top 3 under (Color = red) AND (Shape = round), min rule:");
    print!("{top}");
    println!("middleware cost: {}", total_stats(&sources));
    println!("(the naive algorithm would retrieve all 2 x 5 = 10 entries)");
}
