//! Image search at scale: `(Color = "red") AND (Shape = "round")` over a
//! synthetic QBIC collection of 5000 images — the exact query Section 4
//! uses to motivate algorithm A0 — comparing the middleware cost of A0'
//! against the naive scan.
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use garlic::agg::iterated::min_agg;
use garlic::core::access::{counted, total_stats};
use garlic::core::algorithms::{fa_min::fagin_min_run, naive::naive_topk};
use garlic::subsys::{AtomicQuery, QbicStore, Subsystem, Target};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let store = QbicStore::synthetic("qbic", 5000, &mut rng);
    println!("indexed {} synthetic images", store.len());

    let color_q = AtomicQuery::new("Color", Target::text("red"));
    let shape_q = AtomicQuery::new("Shape", Target::text("round"));

    // Each atomic query is answered by the subsystem as a graded set.
    let color = store.evaluate(&color_q).expect("known colour");
    let shape = store.evaluate(&shape_q).expect("known shape");
    let sources = counted(vec![color, shape]);

    // Fagin's Algorithm, min-specialised (A0').
    let run = fagin_min_run(&sources, 10).expect("valid query");
    let fa_cost = total_stats(&sources);

    println!("\ntop 10 red AND round images (min rule):");
    for e in run.topk.entries() {
        let img = store.image(e.object).unwrap();
        println!(
            "  image {:>4}  grade {}  (roundness {:.2}, elongation {:.2})",
            e.object.0, e.grade, img.roundness, img.elongation
        );
    }

    println!("\nA0' diagnostics:");
    println!("  sorted depth T:     {}", run.stop_depth);
    println!("  threshold g0:       {}", run.threshold);
    println!("  candidates probed:  {}", run.candidates);
    println!("  middleware cost:    {fa_cost}");

    // The naive baseline pays 2N.
    let color = store.evaluate(&color_q).unwrap();
    let shape = store.evaluate(&shape_q).unwrap();
    let naive_sources = counted(vec![color, shape]);
    let reference = naive_topk(&naive_sources, &min_agg(), 10).unwrap();
    let naive_cost = total_stats(&naive_sources);
    println!("  naive cost:         {naive_cost}");
    println!(
        "  speedup:            {:.1}x",
        naive_cost.unweighted() as f64 / fa_cost.unweighted() as f64
    );

    assert!(
        run.topk.same_grades(&reference, 1e-12),
        "A0' must agree with the naive reference"
    );
    println!("\nanswers verified against the naive reference ✓");
}
