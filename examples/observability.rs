//! The telemetry layer end to end: attach one registry to the middleware,
//! EXPLAIN a few queries (executed traces with per-source Section 5
//! bills), serve a concurrent batch, and dump the accumulated registry as
//! Prometheus text — counters, gauges, and latency quantiles from every
//! layer that recorded into it.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use garlic::middleware::{Catalog, Garlic, GarlicQuery, GarlicService, Telemetry};
use garlic::subsys::{Target, VectorSubsystem};
use garlic::Grade;

fn main() {
    // A deterministic 20k-object corpus over three graded attributes.
    let n = 20_000;
    let mut rng = garlic_workload::seeded_rng(1996);
    use rand::Rng;
    let mut sub = VectorSubsystem::new("vectors", n);
    for attr in ["Color", "Shape", "Texture"] {
        let grades: Vec<Grade> = (0..n)
            .map(|_| Grade::clamped(rng.gen_range(0..=1000) as f64 / 1000.0))
            .collect();
        sub = sub.with_list(attr, &grades);
    }
    let mut catalog = Catalog::new();
    catalog.register(sub).unwrap();

    // One registry for the whole process. `with_telemetry` is the only
    // switch: without it every recording site below is dead code.
    let telemetry = Telemetry::new();
    let garlic = Garlic::new(catalog).with_telemetry(Arc::clone(&telemetry));

    // 1. EXPLAIN: plan + *execute* + render the span tree. The per-source
    //    S/R counts in the trace are read from the same CountingSource
    //    wrappers the executor bills against — they cannot drift.
    let atom = |a: &str| GarlicQuery::atom(a, Target::text("t"));
    let queries = [
        GarlicQuery::and(atom("Color"), atom("Shape")),
        GarlicQuery::or(atom("Color"), atom("Texture")),
        GarlicQuery::and(atom("Color"), GarlicQuery::not(atom("Shape"))),
    ];
    for query in &queries {
        let ex = garlic.explain(query, 10).unwrap();
        println!("{ex}");
        let summed = ex
            .per_source
            .iter()
            .fold(garlic::AccessStats::default(), |acc, (_, s)| acc + *s);
        assert_eq!(summed, ex.stats, "trace counts are the billed counts");
        println!(
            "   billed {} == sum of {} per-source spans\n",
            ex.stats,
            ex.per_source.len()
        );
    }

    // 2. A concurrent service batch over the same instrumented middleware:
    //    the service layer adds queue depth and per-query latency.
    let service = GarlicService::new(garlic);
    let batch: Vec<(GarlicQuery, usize)> = (0..12)
        .map(|i| {
            (
                GarlicQuery::and(atom("Color"), atom(["Shape", "Texture"][i % 2])),
                5 + 5 * i,
            )
        })
        .collect();
    let results = service.top_k_batch(&batch);
    println!(
        "== served {} queries on {} worker threads",
        results.len(),
        service.threads()
    );

    // 3. The registry, scraped. Counters/gauges/histograms from the
    //    middleware and service layers land here; a disk-backed catalog
    //    would add cache hit rates, fence skips, and shard fan-out under
    //    `storage.*` through the same snapshot.
    let snap = telemetry.snapshot();
    println!("\n== telemetry snapshot (Prometheus exposition)");
    print!("{}", snap.to_prometheus());
    println!(
        "\n(JSON form: {} bytes via snapshot.to_json())",
        snap.to_json().len()
    );
}
