//! A tour of the Section 3 aggregation zoo: how the choice of conjunction
//! rule reorders the same database — and which rules the paper's theorems
//! cover (monotone for the upper bound, strict for the lower bound).
//!
//! ```sh
//! cargo run --release --example aggregation_tour
//! ```

use garlic::agg::iterated::all_iterated_tnorms;
use garlic::agg::means::{ArithmeticMean, GeometricMean, GymnasticsTrimmedMean, MedianAgg};
use garlic::agg::order_stat::KthLargest;
use garlic::agg::weighted::FaginWimmers;
use garlic::agg::{iterated::min_agg, Aggregation};
use garlic::core::access::MemorySource;
use garlic::core::algorithms::fa::fagin_topk;
use garlic::Grade;

fn main() {
    let g = |v: f64| Grade::new(v).expect("grade in [0,1]");
    // Six objects graded by three atomic queries (say colour, shape,
    // texture).
    let lists = vec![
        MemorySource::from_grades(&[g(0.9), g(0.4), g(0.7), g(0.2), g(0.6), g(0.5)]),
        MemorySource::from_grades(&[g(0.3), g(0.8), g(0.7), g(0.9), g(0.5), g(0.6)]),
        MemorySource::from_grades(&[g(0.6), g(0.6), g(0.4), g(0.8), g(0.9), g(0.55)]),
    ];

    let mut aggs: Vec<Box<dyn Aggregation>> = all_iterated_tnorms();
    aggs.push(Box::new(ArithmeticMean));
    aggs.push(Box::new(GeometricMean));
    aggs.push(Box::new(MedianAgg));
    aggs.push(Box::new(GymnasticsTrimmedMean));
    aggs.push(Box::new(KthLargest::new(1)));
    aggs.push(Box::new(FaginWimmers::new(min_agg(), &[3.0, 2.0, 1.0])));

    println!(
        "{:<42} {:>9} {:>7}   top-3 (object: grade)",
        "aggregation", "monotone", "strict"
    );
    println!("{}", "-".repeat(100));
    for agg in &aggs {
        // A0 is correct for every monotone aggregation (Theorem 4.2).
        let top = fagin_topk(&lists, agg, 3).expect("valid query");
        let ranking: Vec<String> = top
            .entries()
            .iter()
            .map(|e| format!("{}: {}", e.object, e.grade))
            .collect();
        let name = agg.name();
        let display = if name.len() > 40 { &name[..40] } else { &name };
        println!(
            "{:<42} {:>9} {:>7}   {}",
            display,
            agg.is_monotone(),
            agg.is_strict(3),
            ranking.join(",  ")
        );
    }

    println!();
    println!("Notes (paper Section 3 / Remark 6.1):");
    println!(" * every t-norm is monotone AND strict: both Theorems 5.3 and 6.4 apply;");
    println!(" * the [TZZ79] means violate conservation (mean(0,1) = 1/2) yet stay");
    println!("   monotone and strict, so the same matching bounds hold;");
    println!(" * median / trimmed mean / max are monotone but NOT strict: the lower");
    println!("   bound fails and faster algorithms exist (B0, the subset algorithm).");
}
