//! The paper's running example: a compact-disk store whose data is spread
//! over a relational DBMS (artist, title, year), a QBIC-like image server
//! (album-cover colour, shape), and a text-retrieval engine (reviews).
//!
//! Walks through the queries Section 2 and Section 4 discuss, showing the
//! plan Garlic picks and the middleware cost it pays for each.
//!
//! ```sh
//! cargo run --release --example cd_store
//! ```

use garlic::middleware::{Catalog, Garlic, GarlicQuery, PlannerOptions};
use garlic::subsys::cd_store::{demo_albums, demo_subsystems};
use garlic::subsys::Target;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1996);
    let (relational, qbic, text) = demo_subsystems(&mut rng);
    let albums = demo_albums();

    let mut catalog = Catalog::new();
    catalog.register(relational.clone()).unwrap();
    catalog.register(qbic.clone()).unwrap();
    catalog.register(text.clone()).unwrap();
    let garlic = Garlic::new(catalog);

    let show = |title: &str, query: &GarlicQuery, k: usize| {
        let result = garlic.top_k(query, k).expect("query evaluates");
        println!("== {title}");
        println!("   query: {query}");
        println!("   strategy: {:?}", result.plan.strategy);
        for e in result.answers.entries() {
            let a = &albums[e.object.index()];
            println!(
                "   {:<18} by {:<8} (cover {:<6}) grade {}",
                a.title, a.artist, a.cover_color, e.grade
            );
        }
        println!("   middleware cost: {}\n", result.stats);
    };

    // Section 2's motivating query: a crisp conjunct plus a fuzzy one.
    // The planner picks the filtered ("Beatles") strategy of Section 4.
    show(
        "Beatles albums with the reddest covers",
        &GarlicQuery::and(
            GarlicQuery::atom("Artist", Target::text("Beatles")),
            GarlicQuery::atom("AlbumColor", Target::text("red")),
        ),
        3,
    );

    // Two fuzzy conjuncts from different QBIC attributes: algorithm A0'.
    show(
        "red AND round covers",
        &GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("Shape", Target::text("round")),
        ),
        3,
    );

    // Disjunction: algorithm B0, cost mk regardless of catalogue size.
    show(
        "red OR blue covers",
        &GarlicQuery::or(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::atom("AlbumColor", Target::text("blue")),
        ),
        3,
    );

    // A compound positive query mixing three subsystems: generic A0.
    show(
        "red covers with rocking or psychedelic reviews",
        &GarlicQuery::and(
            GarlicQuery::atom("AlbumColor", Target::text("red")),
            GarlicQuery::or(
                GarlicQuery::atom("Review", Target::terms(&["rock"])),
                GarlicQuery::atom("Review", Target::terms(&["psychedelic"])),
            ),
        ),
        3,
    );

    // Section 7's hard query: negation forces the naive linear plan.
    let red = GarlicQuery::atom("AlbumColor", Target::text("red"));
    show(
        "the provably hard query: red AND NOT red",
        &GarlicQuery::and(red.clone(), GarlicQuery::not(red)),
        3,
    );

    // Section 8: push the conjunction into QBIC (its own product
    // semantics) and compare with Garlic's min rule.
    let q = GarlicQuery::and(
        GarlicQuery::atom("AlbumColor", Target::text("red")),
        GarlicQuery::atom("Shape", Target::text("round")),
    );
    let mut qbic_only = Catalog::new();
    qbic_only.register(qbic.clone()).unwrap();
    let internal = Garlic::with_options(
        qbic_only,
        PlannerOptions {
            prefer_internal: true,
            ..Default::default()
        },
    );
    let pushed = internal.top_k(&q, 3).unwrap();
    println!("== Section 8: internal conjunction pushed into QBIC (product semantics)");
    println!("   strategy: {:?}", pushed.plan.strategy);
    for e in pushed.answers.entries() {
        let a = &albums[e.object.index()];
        println!("   {:<18} grade {} (product, not min!)", a.title, e.grade);
    }
    println!("   middleware cost: {}", pushed.stats);
}
